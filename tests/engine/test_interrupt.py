"""Cooperative interruption primitives and their engine integration.

Covers the token/scope/checkpoint machinery of
:mod:`repro.engine.interrupt`, the morsel-granular interruption of
:meth:`ExecutionContext.map` (inline and pool paths), the
worker-exception and wedged-pool self-heal behaviors, the fault
injection harness itself, and the bit-identity of an interruptible
serial scan against the plain one.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import operators as ops
from repro.engine.interrupt import (
    CancellationToken,
    QueryCancelledError,
    QueryInterruptedError,
    QueryTimeoutError,
    cancellation_scope,
    checkpoint,
    current_token,
    validate_timeout_ms,
)
from repro.engine.parallel import ExecutionContext, validate_stall_timeout
from repro.testing import FaultInjector, FaultRule, InjectedWorkerError, inject
from repro.storage import Table


def make_table(n=1000, name="t"):
    return Table.from_arrays(
        name, {"k": np.arange(n, dtype=np.int64), "v": np.arange(n, dtype=np.float64)}
    )


class TestValidateTimeoutMs:
    @pytest.mark.parametrize("value", [1, 250, 10_000, np.int64(7)])
    def test_accepts_positive_integers(self, value):
        assert validate_timeout_ms(value) == int(value)

    @pytest.mark.parametrize("value", [0, -1, -250])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            validate_timeout_ms(value)

    @pytest.mark.parametrize("value", [1.5, "4", True, None, [100]])
    def test_rejects_non_integers(self, value):
        with pytest.raises(TypeError):
            validate_timeout_ms(value)

    def test_stall_timeout_validation(self):
        assert validate_stall_timeout(2.5) == 2.5
        assert validate_stall_timeout(3) == 3.0
        for bad in (0, -1.0):
            with pytest.raises(ValueError):
                validate_stall_timeout(bad)
        for bad in (True, "2", None):
            with pytest.raises(TypeError):
                validate_stall_timeout(bad)


class TestCancellationToken:
    def test_fresh_token_passes_checks(self):
        token = CancellationToken()
        token.check()  # no signal: no raise
        assert not token.cancelled and not token.expired()
        assert token.deadline is None and token.remaining() is None

    def test_cancel_raises_typed_error(self):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            token.check()
        # QueryInterruptedError covers both causes
        with pytest.raises(QueryInterruptedError):
            token.check()

    def test_deadline_expires(self):
        token = CancellationToken(timeout_ms=1)
        assert token.timeout_ms == 1 and token.deadline is not None
        time.sleep(0.01)
        assert token.expired()
        with pytest.raises(QueryTimeoutError, match="timed out after 1 ms"):
            token.check()

    def test_cancel_wins_over_expired_deadline(self):
        token = CancellationToken(timeout_ms=1)
        time.sleep(0.01)
        token.cancel()
        with pytest.raises(QueryCancelledError):
            token.check()

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            CancellationToken(timeout_ms=0)
        with pytest.raises(TypeError):
            CancellationToken(timeout_ms=True)


class TestScope:
    def test_no_scope_by_default(self):
        assert current_token() is None
        checkpoint()  # no-op, no raise

    def test_scope_installs_and_restores(self):
        token = CancellationToken()
        with cancellation_scope(token):
            assert current_token() is token
        assert current_token() is None

    def test_scopes_nest(self):
        outer, inner = CancellationToken(), CancellationToken()
        with cancellation_scope(outer):
            with cancellation_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_none_clears_scope(self):
        token = CancellationToken()
        with cancellation_scope(token):
            with cancellation_scope(None):
                assert current_token() is None
                checkpoint()
            assert current_token() is token

    def test_scope_restored_on_exception(self):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            with cancellation_scope(token):
                checkpoint()
        assert current_token() is None

    def test_scope_is_thread_local(self):
        token = CancellationToken()
        seen = []
        with cancellation_scope(token):
            t = threading.Thread(target=lambda: seen.append(current_token()))
            t.start()
            t.join()
        assert seen == [None]


class TestMapInterruption:
    def test_inline_map_checks_token(self):
        token = CancellationToken()
        token.cancel()
        with ExecutionContext(parallelism=1) as ctx:
            with cancellation_scope(token):
                with pytest.raises(QueryCancelledError):
                    ctx.map(lambda x: x * 2, [1, 2, 3])

    def test_pool_map_checks_token(self):
        # workers don't inherit thread-locals: the token must be
        # captured at fan-out for the pool path to interrupt at all
        token = CancellationToken()
        token.cancel()
        with ExecutionContext(parallelism=2) as ctx:
            with cancellation_scope(token):
                with pytest.raises(QueryCancelledError):
                    ctx.map(lambda x: x * 2, list(range(8)))

    def test_pool_map_timeout_token(self):
        token = CancellationToken(timeout_ms=1)
        time.sleep(0.01)
        with ExecutionContext(parallelism=2) as ctx:
            with cancellation_scope(token):
                with pytest.raises(QueryTimeoutError):
                    ctx.map(lambda x: x, list(range(8)))

    def test_unsignalled_token_changes_nothing(self):
        token = CancellationToken(timeout_ms=3_600_000)
        with ExecutionContext(parallelism=2) as ctx:
            plain = ctx.map(lambda x: x * 3, list(range(16)))
            with cancellation_scope(token):
                armed = ctx.map(lambda x: x * 3, list(range(16)))
        assert plain == armed

    def test_map_grouped_checks_token(self):
        token = CancellationToken()
        token.cancel()
        items = list(range(8))
        with ExecutionContext(parallelism=2) as ctx:
            with cancellation_scope(token):
                with pytest.raises(QueryCancelledError):
                    ctx.map_grouped(lambda x: x, items, [i % 2 for i in items])


class TestWorkerExceptionRecovery:
    def test_worker_exception_propagates_with_original_traceback(self):
        def boom(x):
            raise ValueError(f"morsel {x} exploded")

        with ExecutionContext(parallelism=2) as ctx:
            with pytest.raises(ValueError, match="exploded") as err:
                ctx.map(boom, list(range(8)))
        # the traceback reaches into the worker fn, not just the
        # future.result() re-raise site
        frames = []
        tb = err.value.__traceback__
        while tb is not None:
            frames.append(tb.tb_frame.f_code.co_name)
            tb = tb.tb_next
        assert "boom" in frames

    def test_pool_survives_poisoned_morsel(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("poisoned")
            return x * 2

        with ExecutionContext(parallelism=2) as ctx:
            with pytest.raises(RuntimeError):
                ctx.map(boom, list(range(8)))
            # the same context keeps working at full fan-out
            assert ctx.map(lambda x: x + 1, list(range(8))) == list(range(1, 9))
            assert ctx.heal_count == 0

    def test_injected_worker_crash_recycles(self):
        injector = FaultInjector(
            seed=7, rules={"worker.morsel": FaultRule(max_fires=1)}
        )
        with ExecutionContext(parallelism=2) as ctx:
            with inject(injector):
                with pytest.raises(InjectedWorkerError):
                    ctx.map(lambda x: x, list(range(8)))
                assert injector.fired["worker.morsel"] == 1
                # rule exhausted: the very next map succeeds
                assert ctx.map(lambda x: x, [1, 2, 3]) == [1, 2, 3]


class TestStallSelfHeal:
    def test_wedged_pool_quarantined_and_results_recomputed(self):
        injector = FaultInjector(
            seed=11,
            rules={"worker.morsel": FaultRule(action="block", max_fires=1)},
        )
        ctx = ExecutionContext(parallelism=2, stall_timeout_s=0.2)
        try:
            with inject(injector):
                got = ctx.map(lambda x: x * 2, list(range(6)))
            assert got == [x * 2 for x in range(6)]
            assert ctx.heal_count == 1
            # a replacement pool is built lazily and works
            assert ctx.map(lambda x: x + 5, list(range(6))) == list(range(5, 11))
            assert ctx.heal_count == 1
        finally:
            injector.release_all()
            ctx.close()

    def test_stall_timeout_knob_surfaces(self):
        with ExecutionContext(parallelism=2, stall_timeout_s=1.5) as ctx:
            assert ctx.stall_timeout_s == 1.5
        with pytest.raises(ValueError):
            ExecutionContext(parallelism=2, stall_timeout_s=0)


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        def draw(seed):
            inj = FaultInjector(
                seed=seed,
                rules={"p": FaultRule(probability=0.5, action="sleep", sleep_s=0.0)},
            )
            return [inj.decide("p") is not None for _ in range(32)]

        assert draw(42) == draw(42)
        assert draw(42) != draw(43)  # astronomically unlikely to collide

    def test_corrupt_flips_exactly_one_bit(self):
        inj = FaultInjector(seed=3)
        data = bytes(range(64))
        out = inj.corrupt(data)
        assert len(out) == len(data)
        diff = [(a ^ b) for a, b in zip(data, out)]
        changed = [d for d in diff if d]
        assert len(changed) == 1 and bin(changed[0]).count("1") == 1

    def test_mutate_applies_corrupt_rules_only(self):
        inj = FaultInjector(seed=5, rules={"f": FaultRule(action="corrupt")})
        with inject(inj):
            from repro.testing import faults

            assert faults.mutate("other", b"abc") == b"abc"
            assert faults.mutate("f", b"abc") != b"abc"

    def test_injectors_do_not_nest(self):
        with inject(FaultInjector(seed=1)):
            with pytest.raises(RuntimeError):
                with inject(FaultInjector(seed=2)):
                    pass

    def test_disarmed_by_default(self):
        from repro.testing import faults

        assert faults.ACTIVE is False

    def test_max_fires_bounds_draws(self):
        inj = FaultInjector(seed=9, rules={"p": FaultRule(max_fires=2)})
        hits = [inj.decide("p") is not None for _ in range(5)]
        assert hits == [True, True, False, False, False]

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(action="explode")
        with pytest.raises(ValueError):
            FaultRule(probability=1.5)


class TestScanInterruption:
    def test_cancelled_scan_unwinds(self):
        table = make_table(2_000)
        token = CancellationToken()
        token.cancel()
        op = ops.Scan(table)
        op.bind_context(ExecutionContext(parallelism=1, morsel_rows=256))
        with cancellation_scope(token):
            with pytest.raises(QueryCancelledError):
                op.execute()

    def test_armed_scan_is_bit_identical_to_plain(self):
        table = make_table(2_000)
        plain = ops.Scan(table).execute()
        token = CancellationToken(timeout_ms=3_600_000)
        op = ops.Scan(table)
        op.bind_context(ExecutionContext(parallelism=1, morsel_rows=256))
        with cancellation_scope(token):
            armed = op.execute()
        assert plain.column_names == armed.column_names
        for name in plain.column_names:
            np.testing.assert_array_equal(plain.column(name), armed.column(name))

    def test_expired_deadline_interrupts_scan(self):
        table = make_table(2_000)
        token = CancellationToken(timeout_ms=1)
        time.sleep(0.01)
        op = ops.Scan(table)
        op.bind_context(ExecutionContext(parallelism=1, morsel_rows=256))
        with cancellation_scope(token):
            with pytest.raises(QueryTimeoutError):
                op.execute()
