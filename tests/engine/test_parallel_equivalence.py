"""Parallel-vs-serial equivalence: results must be bit-identical.

The morsel-parallel executor promises indistinguishability from serial
execution (see :mod:`repro.engine.parallel`).  This suite pins that
promise over the TPC-H query suite, PatchIndex-optimized Figure 7
plans over partitioned tables, and randomized operator workloads —
comparing every column with exact equality (including dtypes, float
bit patterns included).
"""

import numpy as np
import pytest

from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager
from repro.engine import col, lit
from repro.engine.parallel import ExecutionContext
from repro.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    Optimizer,
    ScanNode,
    SortNode,
    execute_plan,
)
from repro.storage import Catalog, PartitionedTable, Table
from repro.workloads import generate_dataset, generate_tpch
from repro.workloads.tpch_queries import q3_plan, q7_plan, q12_plan

#: Tiny morsels + a zero row threshold force every parallel path to
#: engage even on test-sized data.
CTX_KWARGS = dict(morsel_rows=1024, min_parallel_rows=0)


@pytest.fixture(scope="module")
def ctx():
    with ExecutionContext(parallelism=3, **CTX_KWARGS) as context:
        yield context


def assert_identical(serial, parallel):
    assert serial.column_names == parallel.column_names
    assert serial.num_rows == parallel.num_rows
    for name in serial.column_names:
        a, b = serial.column(name), parallel.column(name)
        assert a.dtype == b.dtype, name
        np.testing.assert_array_equal(a, b, err_msg=name)


def run_both(plan, catalog, ctx):
    assert_identical(
        execute_plan(plan, catalog), execute_plan(plan, catalog, context=ctx)
    )


class TestTPCHEquivalence:
    @pytest.fixture(scope="class")
    def catalog(self):
        catalog = Catalog()
        generate_tpch(scale=0.004, seed=7).register(catalog)
        return catalog

    @pytest.mark.parametrize("make_plan", [q3_plan, q7_plan, q12_plan], ids=["q3", "q7", "q12"])
    def test_query_identical(self, catalog, ctx, make_plan):
        run_both(make_plan(), catalog, ctx)

    def test_q12_partitioned_lineitem(self, ctx):
        """Morsels must respect partition boundaries of the probe side."""
        catalog = Catalog()
        data = generate_tpch(scale=0.004, seed=7)
        data.register(catalog)
        catalog.drop("lineitem")
        catalog.register(
            PartitionedTable.from_table(data.lineitem, "l_orderkey", 5)
        )
        run_both(q12_plan(), catalog, ctx)

    def test_parallelism_choice_does_not_change_results(self, catalog):
        expected = execute_plan(q3_plan(), catalog)
        for workers in (2, 5):
            with ExecutionContext(parallelism=workers, **CTX_KWARGS) as c:
                assert_identical(expected, execute_plan(q3_plan(), catalog, context=c))


class TestPatchIndexPlanEquivalence:
    """Figure 7 plan shapes: PatchScan flows over partitioned tables."""

    @pytest.mark.parametrize("constraint", ["nuc", "nsc"])
    @pytest.mark.parametrize("rate", [0.0, 0.1, 0.5])
    def test_optimized_plans(self, ctx, constraint, rate):
        ds = generate_dataset(
            20_000,
            rate,
            constraint,
            num_partitions=4,
            seed=11,
            name=f"eq_{constraint}_{int(rate * 10)}",
            payload_columns=2,
        )
        catalog = Catalog()
        catalog.register(ds.table)
        mgr = PatchIndexManager(catalog)
        cons = NearlyUniqueColumn() if constraint == "nuc" else NearlySortedColumn()
        mgr.create(ds.table, "v", cons)
        if constraint == "nuc":
            plan = DistinctNode(ScanNode(ds.table.name, ["v"]), ["v"])
        else:
            plan = SortNode(ScanNode(ds.table.name), ["v"])
        optimized = Optimizer(catalog, mgr, use_cost_model=False).optimize(plan)
        run_both(optimized, catalog, ctx)


class TestRandomizedWorkloads:
    """Seeded random relations through every parallelized operator."""

    @pytest.fixture(scope="class")
    def catalog(self):
        rng = np.random.default_rng(23)
        n = 30_000
        fact = Table.from_arrays(
            "fact",
            {
                "fk": rng.integers(0, 5_000, n).astype(np.int64),
                "grp": rng.integers(0, 40, n).astype(np.int64),
                "cat": np.array(rng.choice(["x", "y", "z"], n), dtype=object),
                "val": rng.random(n),
                "qty": rng.integers(0, 1000, n).astype(np.int64),
            },
        )
        dim = Table.from_arrays(
            "dim",
            {
                "dk": np.arange(5_000, dtype=np.int64),
                "weight": rng.random(5_000),
            },
        )
        catalog = Catalog()
        catalog.register(fact)
        catalog.register(dim)
        return catalog

    @pytest.mark.parametrize("seed", range(5))
    def test_filter_scan(self, catalog, ctx, seed):
        rng = np.random.default_rng(seed)
        lo = float(rng.random() * 0.5)
        plan = FilterNode(
            ScanNode("fact"), (col("val") > lo) & (col("grp") < int(rng.integers(5, 40)))
        )
        run_both(plan, catalog, ctx)

    def test_hash_join_duplicates(self, catalog, ctx):
        plan = JoinNode(ScanNode("dim"), ScanNode("fact"), "dk", "fk", build_side="left")
        run_both(plan, catalog, ctx)

    def test_hash_join_auto_build_side(self, catalog, ctx):
        plan = JoinNode(ScanNode("fact"), ScanNode("dim"), "fk", "dk")
        run_both(plan, catalog, ctx)

    def test_aggregate_all_functions(self, catalog, ctx):
        plan = AggregateNode(
            ScanNode("fact"),
            ["grp", "cat"],
            {
                "n": ("count", None),
                "int_sum": ("sum", "qty"),
                "float_sum": ("sum", "val"),
                "expr_sum": ("sum", col("val") * (lit(1.0) + col("val"))),
                "lo": ("min", "val"),
                "hi": ("max", "qty"),
                "mean": ("avg", "val"),
            },
        )
        run_both(plan, catalog, ctx)

    def test_aggregate_over_filter(self, catalog, ctx):
        plan = AggregateNode(
            FilterNode(ScanNode("fact"), col("val") > 0.3),
            ["grp"],
            {"s": ("sum", "val"), "n": ("count", None)},
        )
        run_both(plan, catalog, ctx)

    def test_hash_join_dynamic_range_propagation(self, catalog, ctx):
        """DRP pushes build-side key ranges into probe scans at runtime;
        the pruned parallel scan must still match the serial result."""
        narrow = FilterNode(ScanNode("dim"), col("dk") < 500)
        plan = JoinNode(
            narrow,
            ScanNode("fact"),
            "dk",
            "fk",
            build_side="left",
            dynamic_range_propagation=True,
        )
        run_both(plan, catalog, ctx)

    def test_sort_after_parallel_scan(self, catalog, ctx):
        plan = SortNode(FilterNode(ScanNode("fact"), col("val") > 0.5), ["fk", "qty"])
        run_both(plan, catalog, ctx)

    def test_join_then_aggregate_pipeline(self, catalog, ctx):
        joined = JoinNode(ScanNode("dim"), ScanNode("fact"), "dk", "fk", build_side="left")
        plan = SortNode(
            AggregateNode(
                joined,
                ["grp"],
                {"wsum": ("sum", col("val") * col("weight")), "n": ("count", None)},
            ),
            ["grp"],
        )
        run_both(plan, catalog, ctx)
