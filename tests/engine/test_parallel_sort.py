"""Parallel sort determinism: bit-identity with the stable serial sort.

The parallel sort engine (:mod:`repro.engine.parallel_sort`) promises
output bit-identical to ``np.argsort(kind="stable")`` composed over the
sort keys — the exact permutation :func:`serial_sort_permutation`
produces — at any worker count.  This suite pins that contract over the
edge cases that break naive parallel sorts: multi-key asc/desc mixes,
all-equal keys (stability), NaN/None placement, empty and single-row
inputs, ties straddling chunk boundaries, and randomized workloads at
parallelism 1/2/8; plus the consumers (Sort operator, SQL ORDER BY over
TPC-H, MergeUnion, MergeJoin, SortKey) and the payoff gate.
"""

import numpy as np
import pytest

from repro.engine.batch import Relation
from repro.engine.operators import MergeJoin, MergeUnion, RelationSource, Sort
from repro.engine.parallel import ExecutionContext
from repro.engine.parallel_sort import (
    merge_sorted_runs,
    parallel_sort_cost,
    serial_sort_cost,
    serial_sort_permutation,
    sort_parallel_payoff,
    sort_permutation,
)
from repro.materialization.sortkey import SortKey
from repro.sql.session import SQLSession
from repro.storage import Catalog, PartitionedTable, Table
from repro.workloads import generate_tpch

PARALLELISMS = [1, 2, 8]
#: Tiny morsels force many chunk runs (and merges) on test-sized input.
CTX_KWARGS = dict(morsel_rows=64, min_parallel_rows=0)


def make_context(parallelism: int) -> ExecutionContext:
    return ExecutionContext(parallelism=parallelism, **CTX_KWARGS)


def assert_perm_matches_serial(keys, ascending, parallelism):
    want = serial_sort_permutation(keys, ascending)
    with make_context(parallelism) as ctx:
        got = sort_permutation(keys, ascending, context=ctx)
    assert got.dtype == np.int64
    np.testing.assert_array_equal(got, want)


class TestSingleKey:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    @pytest.mark.parametrize("ascending", [True, False])
    def test_int_keys(self, parallelism, ascending):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 50, 1500).astype(np.int64)
        assert_perm_matches_serial([keys], [ascending], parallelism)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    @pytest.mark.parametrize("ascending", [True, False])
    def test_float_keys_with_nan(self, parallelism, ascending):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 20, 1200).astype(np.float64)
        keys[rng.random(1200) < 0.25] = np.nan
        keys[rng.random(1200) < 0.05] = -0.0
        assert_perm_matches_serial([keys], [ascending], parallelism)

    def test_nan_sorts_last_and_ties_stay_stable(self):
        keys = np.array([np.nan, 1.0, np.nan, 0.0, 1.0])
        with make_context(8) as ctx:
            perm = sort_permutation([keys], context=ctx)
        assert perm.tolist() == [3, 1, 4, 0, 2]

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_all_equal_keys_is_identity(self, parallelism):
        keys = np.zeros(700, dtype=np.int64)
        with make_context(parallelism) as ctx:
            asc = sort_permutation([keys], [True], context=ctx)
            desc = sort_permutation([keys], [False], context=ctx)
        np.testing.assert_array_equal(asc, np.arange(700))
        # descending reverses the order of distinct-key groups only, so
        # an all-equal input keeps original row order (SQL tie rule)
        np.testing.assert_array_equal(desc, np.arange(700))

    def test_empty_and_single_row(self):
        with make_context(8) as ctx:
            for n in (0, 1):
                keys = np.arange(n, dtype=np.int64)
                perm = sort_permutation([keys], context=ctx)
                np.testing.assert_array_equal(perm, np.arange(n))
                assert perm.dtype == np.int64

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_chunk_boundary_ties(self, parallelism):
        # constant blocks sized off the 64-row morsel so every tie group
        # straddles at least one chunk boundary
        keys = np.repeat(np.arange(12, dtype=np.int64), 96)
        assert_perm_matches_serial([keys], [True], parallelism)
        assert_perm_matches_serial([keys], [False], parallelism)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_presorted_and_reversed_input(self, parallelism):
        keys = np.arange(900, dtype=np.int64)
        assert_perm_matches_serial([keys], [True], parallelism)
        assert_perm_matches_serial([keys[::-1].copy()], [True], parallelism)


class TestMultiKey:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    @pytest.mark.parametrize(
        "ascending",
        [[True, True], [True, False], [False, True], [False, False]],
    )
    def test_two_key_direction_mixes(self, parallelism, ascending):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 8, 1000).astype(np.int64)
        b = rng.integers(0, 8, 1000).astype(np.float64)
        b[rng.random(1000) < 0.1] = np.nan
        assert_perm_matches_serial([a, b], ascending, parallelism)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_three_keys_with_heavy_ties(self, parallelism):
        rng = np.random.default_rng(4)
        keys = [
            rng.integers(0, 3, 1100).astype(np.int64),
            rng.integers(0, 3, 1100).astype(np.int64),
            rng.integers(0, 3, 1100).astype(np.float64),
        ]
        assert_perm_matches_serial(keys, [True, False, True], parallelism)

    def test_all_ascending_matches_lexsort(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 5, 800).astype(np.int64)
        b = rng.integers(0, 5, 800).astype(np.int64)
        want = np.lexsort((b, a))
        with make_context(8) as ctx:
            got = sort_permutation([a, b], context=ctx)
        np.testing.assert_array_equal(got, want)

    def test_high_cardinality_code_combination_does_not_overflow(self):
        # four ~2^40-cardinality keys: the rank-code product would wrap
        # int64 if combined before re-densifying (regression: the wrap
        # silently corrupted the permutation while staying under the
        # post-combine guard)
        rng = np.random.default_rng(13)
        n = 60_000
        keys = [rng.integers(0, 1 << 40, n).astype(np.int64) for _ in range(4)]
        want = serial_sort_permutation(keys, [True] * 4)
        with ExecutionContext(parallelism=4, morsel_rows=1024, min_parallel_rows=0) as ctx:
            got = sort_permutation(keys, [True] * 4, context=ctx)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 2000))
        nkeys = int(rng.integers(1, 4))
        keys = []
        for _ in range(nkeys):
            if rng.integers(0, 2):
                keys.append(rng.integers(-5, 5, n).astype(np.int64))
            else:
                k = rng.integers(0, 6, n).astype(np.float64) * 0.5
                k[rng.random(n) < 0.15] = np.nan
                keys.append(k)
        ascending = [bool(rng.integers(0, 2)) for _ in range(nkeys)]
        for parallelism in (2, 8):
            assert_perm_matches_serial(keys, ascending, parallelism)


class TestObjectAndNoneKeys:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_string_keys_identical_at_any_parallelism(self, parallelism):
        rng = np.random.default_rng(6)
        keys = np.array(rng.choice(["pear", "apple", "fig", "plum"], 500), dtype=object)
        assert_perm_matches_serial([keys], [True], parallelism)
        assert_perm_matches_serial([keys], [False], parallelism)

    def test_none_sorts_last_and_ties_by_position(self):
        keys = np.array(["b", None, "a", None, "b"], dtype=object)
        want = serial_sort_permutation([keys], [True])
        assert want.tolist() == [2, 0, 4, 1, 3]
        with make_context(8) as ctx:
            got = sort_permutation([keys], [True], context=ctx)
        np.testing.assert_array_equal(got, want)

    def test_none_first_under_descending(self):
        keys = np.array([None, "a", "c", None], dtype=object)
        want = serial_sort_permutation([keys], [False])
        # None group first (it sorts largest), in original row order
        assert want.tolist() == [0, 3, 2, 1]


class TestMergeSortedRuns:
    def test_matches_stable_argsort_of_concat(self):
        rng = np.random.default_rng(7)
        runs = [np.sort(rng.integers(0, 30, int(rng.integers(0, 300)))) for _ in range(5)]
        want = np.argsort(np.concatenate(runs), kind="stable")
        with make_context(4) as ctx:
            got = merge_sorted_runs(runs, context=ctx)
        np.testing.assert_array_equal(got, want)

    def test_ties_break_by_run_then_offset(self):
        runs = [np.array([1, 1, 2]), np.array([1, 2]), np.array([0, 1])]
        got = merge_sorted_runs(runs)
        # 0 from run 2; then the 1s in (run, offset) order; the 2s likewise
        assert got.tolist() == [5, 0, 1, 3, 6, 2, 4]

    def test_empty_runs(self):
        assert merge_sorted_runs([]).tolist() == []
        got = merge_sorted_runs([np.array([], dtype=np.int64), np.array([3, 4])])
        assert got.tolist() == [0, 1]


class TestDescendingMergeSortedRuns:
    """Merging non-increasing runs with ``ascending=False`` must be
    bit-identical to the serial descending sort of the concatenation:
    distinct-key groups in descending order, equal keys in (run, offset)
    order — the SQL tie rule (descending never reverses tie order)."""

    def _descending_runs(self, rng, n_runs, with_nan=False):
        runs = []
        for _ in range(n_runs):
            n = int(rng.integers(0, 300))
            vals = rng.integers(0, 12, n).astype(np.float64)
            if with_nan:
                vals[rng.random(n) < 0.2] = np.nan
            # canonical descending order (group-reversed stable argsort)
            runs.append(vals[serial_sort_permutation([vals], [False])])
        return runs

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    @pytest.mark.parametrize("with_nan", [False, True])
    def test_matches_serial_descending_sort(self, parallelism, with_nan):
        rng = np.random.default_rng(21)
        for trial in range(5):
            runs = self._descending_runs(rng, int(rng.integers(1, 6)), with_nan)
            concat = np.concatenate(runs) if runs else np.array([])
            want = serial_sort_permutation([concat], [False])
            with make_context(parallelism) as ctx:
                got = merge_sorted_runs(runs, context=ctx, ascending=False)
            np.testing.assert_array_equal(got, want, err_msg=f"trial {trial}")

    def test_ties_break_by_run_then_offset(self):
        runs = [np.array([2, 1, 1]), np.array([2, 1]), np.array([1, 0])]
        got = merge_sorted_runs(runs, ascending=False)
        # the 2s in (run, offset) order; then every 1 likewise; the 0
        # last — same tie rule as the ascending merge
        concat = np.concatenate(runs)
        np.testing.assert_array_equal(got, serial_sort_permutation([concat], [False]))
        assert got.tolist() == [0, 3, 1, 2, 4, 5, 6]

    def test_string_runs_supported(self):
        a = np.array(["pear", "fig", "apple"], dtype=object)
        b = np.array(["kiwi", "apple"], dtype=object)
        got = merge_sorted_runs([a, b], ascending=False)
        concat = np.concatenate([a, b])
        np.testing.assert_array_equal(got, serial_sort_permutation([concat], [False]))

    def test_empty_and_single_runs(self):
        assert merge_sorted_runs([], ascending=False).tolist() == []
        one = np.array([3, 3, 1], dtype=np.int64)
        got = merge_sorted_runs([one], ascending=False)
        np.testing.assert_array_equal(got, serial_sort_permutation([one], [False]))

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_sortkey_descending_scan_merge_leaves_reference_path(
        self, parallelism, monkeypatch
    ):
        """The descending SortKey scan-merge now runs the k-way merge
        (bit-identically) instead of re-sorting the concatenation."""
        from repro.materialization import sortkey as sortkey_mod
        from repro.storage import Catalog, PartitionedTable, Table

        rng = np.random.default_rng(22)
        n = 4000
        base = Table.from_arrays(
            "m",
            {
                "mid": np.arange(n, dtype=np.int64),
                "v": rng.integers(0, 50, n).astype(np.float64),
            },
        )
        parts = PartitionedTable.from_table(base, "mid", 4)
        ctx = make_context(parallelism) if parallelism > 1 else None

        calls = []
        real_argsort = np.argsort

        def spying_argsort(*args, **kwargs):
            calls.append(kwargs.get("kind"))
            return real_argsort(*args, **kwargs)

        sk = SortKey(parts, "v", ascending=False, context=ctx)
        # reference: full serial descending sort of the concatenation
        concat = np.concatenate([p.column("v") for p in sk.sorted_parts])
        want_order = serial_sort_permutation([concat], [False])
        monkeypatch.setattr(sortkey_mod.np, "argsort", spying_argsort)
        got = sk.scan_sorted(["v", "mid"])
        assert not calls, "descending scan-merge fell back to a full argsort"
        all_mid = np.concatenate([p.column("mid") for p in sk.sorted_parts])
        np.testing.assert_array_equal(got["v"], concat[want_order])
        np.testing.assert_array_equal(got["mid"], all_mid[want_order])
        sk.detach()
        if ctx is not None:
            ctx.close()


class TestMapGrouped:
    def test_order_preserved_and_grouping_applied(self):
        with make_context(4) as ctx:
            items = list(range(20))
            keys = [i % 3 for i in items]
            out = ctx.map_grouped(lambda x: x * x, items, keys)
        assert out == [i * i for i in items]

    def test_serial_context_runs_inline(self):
        ctx = ExecutionContext(parallelism=1)
        assert ctx.map_grouped(lambda x: -x, [1, 2, 3], [0, 0, 1]) == [-1, -2, -3]

    def test_key_length_mismatch_rejected(self):
        with make_context(2) as ctx:
            with pytest.raises(ValueError):
                ctx.map_grouped(lambda x: x, [1, 2], [0])


class TestOperators:
    def _relation(self, seed=8, n=1500):
        rng = np.random.default_rng(seed)
        return Relation(
            {
                "k": rng.integers(0, 40, n).astype(np.int64),
                "f": rng.integers(0, 10, n).astype(np.float64),
                "payload": np.arange(n, dtype=np.int64),
            }
        )

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_sort_operator_bit_identical(self, parallelism):
        rel = self._relation()
        want = Sort(RelationSource(rel), ["k", "f"], [True, False]).execute()
        with make_context(parallelism) as ctx:
            got = Sort(RelationSource(rel), ["k", "f"], [True, False]).bind_context(ctx).execute()
        for name in want.column_names:
            np.testing.assert_array_equal(want.column(name), got.column(name), err_msg=name)

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_merge_union_bit_identical(self, parallelism):
        rng = np.random.default_rng(9)
        rels = []
        for i in range(3):
            n = 400 + 100 * i
            keys = np.sort(rng.integers(0, 25, n)).astype(np.int64)
            rels.append(Relation({"k": keys, "src": np.full(n, i, dtype=np.int64)}))
        want = MergeUnion([RelationSource(r) for r in rels], "k").execute()
        with make_context(parallelism) as ctx:
            got = (
                MergeUnion([RelationSource(r) for r in rels], "k")
                .bind_context(ctx)
                .execute()
            )
        for name in want.column_names:
            np.testing.assert_array_equal(want.column(name), got.column(name), err_msg=name)
        # and the union is what stably re-sorting the concatenation gives
        concat = Relation.concat(rels)
        resorted = concat.take(np.argsort(concat.column("k"), kind="stable"))
        np.testing.assert_array_equal(want.column("src"), resorted.column("src"))

    def test_merge_union_descending(self):
        a = Relation({"k": np.array([5.0, 3.0, 1.0])})
        b = Relation({"k": np.array([4.0, 1.0])})
        want = MergeUnion([RelationSource(a), RelationSource(b)], "k", ascending=False).execute()
        assert want.column("k").tolist() == [5.0, 4.0, 3.0, 1.0, 1.0]

    @pytest.mark.parametrize("parallelism", [1, 8])
    def test_merge_join_self_heals_unsorted_build(self, parallelism):
        rng = np.random.default_rng(10)
        build = Relation(
            {
                "k": rng.permutation(np.arange(500)).astype(np.int64),
                "w": rng.random(500),
            }
        )
        probe = Relation(
            {"k2": np.sort(rng.integers(0, 500, 800)).astype(np.int64)}
        )
        join = MergeJoin(RelationSource(build), RelationSource(probe), "k", "k2")
        if parallelism > 1:
            with make_context(parallelism) as ctx:
                out = join.bind_context(ctx).execute()
        else:
            out = join.execute()
        # every probe key matches exactly once and arrives in probe order
        np.testing.assert_array_equal(out.column("k"), probe.column("k2"))
        lookup = build.column("w")[np.argsort(build.column("k"), kind="stable")]
        np.testing.assert_array_equal(out.column("w"), lookup[probe.column("k2")])


class TestSQLOrderBy:
    @pytest.fixture(scope="class")
    def tpch_catalog(self):
        catalog = Catalog()
        generate_tpch(scale=0.002, seed=5).register(catalog)
        return catalog

    QUERIES = [
        "SELECT * FROM lineitem ORDER BY l_extendedprice",
        "SELECT * FROM lineitem ORDER BY l_discount DESC, l_orderkey",
        "SELECT * FROM orders ORDER BY o_orderdate DESC",
        "SELECT l_orderkey, l_suppkey FROM lineitem ORDER BY l_suppkey, l_orderkey DESC",
    ]

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_order_by_bit_identical(self, tpch_catalog, parallelism):
        serial = SQLSession(tpch_catalog)
        with SQLSession(
            tpch_catalog, parallelism=parallelism, morsel_rows=512
        ) as parallel:
            for sql in self.QUERIES:
                want, got = serial.execute(sql), parallel.execute(sql)
                assert want.column_names == got.column_names, sql
                for name in want.column_names:
                    a, b = want.column(name), got.column(name)
                    assert a.dtype == b.dtype, (sql, name)
                    np.testing.assert_array_equal(a, b, err_msg=f"{sql} / {name}")


class TestSortKeyParallel:
    def _partitioned(self, seed=11, n=4000, parts=4):
        rng = np.random.default_rng(seed)
        table = Table.from_arrays(
            "sk_src",
            {
                "pk": np.arange(n, dtype=np.int64),
                "v": rng.integers(0, 200, n).astype(np.int64),
                "payload": rng.random(n),
            },
        )
        return PartitionedTable.from_table(table, "pk", parts)

    @pytest.mark.parametrize("ascending", [True, False])
    def test_refresh_and_scan_bit_identical(self, ascending):
        serial_sk = SortKey(self._partitioned(), "v", ascending=ascending,
                            refresh_policy="manual")
        parallel_sk = SortKey(self._partitioned(), "v", ascending=ascending,
                              refresh_policy="manual", parallelism=4)
        try:
            for a, b in zip(serial_sk.sorted_parts, parallel_sk.sorted_parts):
                for name in a.schema.names:
                    np.testing.assert_array_equal(a.column(name), b.column(name))
            sa, sb = serial_sk.scan_sorted(), parallel_sk.scan_sorted()
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name], err_msg=name)
        finally:
            parallel_sk.detach()

    def test_scan_permutation_is_cached_across_calls(self, monkeypatch):
        sk = SortKey(self._partitioned(), "v", refresh_policy="manual")
        first = sk.scan_sorted(["v"])
        order = sk._scan_order
        assert order is not None
        import repro.materialization.sortkey as sortkey_mod

        def boom(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("permutation re-materialized")

        monkeypatch.setattr(sortkey_mod, "merge_sorted_runs", boom)
        second = sk.scan_sorted(["v", "payload"])
        assert sk._scan_order is order
        np.testing.assert_array_equal(first["v"], second["v"])

    def test_refresh_invalidates_cached_permutation(self):
        pt = self._partitioned()
        sk = SortKey(pt, "v", refresh_policy="manual")
        sk.scan_sorted(["v"])
        assert sk._scan_order is not None
        pt.partitions[0].modify(np.array([0]), {"v": np.array([999])})
        sk.refresh()
        assert sk._scan_order is None

    def test_subset_scan_reads_only_referenced_columns(self, monkeypatch):
        sk = SortKey(self._partitioned(), "v", refresh_policy="manual")
        calls = []
        original = Table.column

        def spy(self, name):
            calls.append(name)
            return original(self, name)

        monkeypatch.setattr(Table, "column", spy)
        sk.scan_sorted(["v"])
        # the key column drives the merge; no payload column is touched
        assert set(calls) == {"v"}


class TestPayoffGate:
    def test_serial_context_never_pays_off(self):
        assert not sort_parallel_payoff(10_000_000, parallelism=1)

    def test_sub_morsel_input_never_pays_off(self):
        assert not sort_parallel_payoff(30_000, parallelism=8, morsel_rows=65_536)
        assert sort_parallel_payoff(30_000, parallelism=8, morsel_rows=1024)

    def test_large_sorts_pay_off(self):
        assert sort_parallel_payoff(4_000_000, parallelism=8)
        assert parallel_sort_cost(4_000_000, 8) < serial_sort_cost(4_000_000)

    def test_below_threshold_falls_back_to_serial_path(self):
        # a context whose morsels exceed the input: the permutation is
        # still correct and comes from the serial reference
        keys = np.random.default_rng(12).integers(0, 50, 2000).astype(np.int64)
        with ExecutionContext(parallelism=8, morsel_rows=65_536) as ctx:
            got = sort_permutation([keys], context=ctx)
        np.testing.assert_array_equal(got, serial_sort_permutation([keys]))

    def test_cost_model_gate(self):
        from repro.plan.cost import CostModel

        catalog = Catalog()
        serial = CostModel(catalog, parallelism=1)
        parallel = CostModel(catalog, parallelism=8)
        assert not serial.sort_parallel_payoff(4_000_000)
        assert parallel.sort_parallel_payoff(4_000_000)
        assert parallel.sort_cost(4_000_000) < serial.sort_cost(4_000_000)
        # below the payoff point both models agree on the serial cost
        assert parallel.sort_cost(10_000) == serial.sort_cost(10_000)
