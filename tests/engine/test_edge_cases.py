"""Edge-case and failure-injection tests across the engine."""

import numpy as np
import pytest

from repro.engine import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    MergeJoin,
    MergeUnion,
    Relation,
    RelationSource,
    Scan,
    Sort,
    col,
    lit,
)
from repro.engine.batch import ROWID
from repro.engine.expressions import expression_columns
from repro.storage import Table


def rel(**cols):
    return Relation({k: np.asarray(v) for k, v in cols.items()})


def src(**cols):
    return RelationSource(rel(**cols))


class TestEmptyInputs:
    def test_join_with_empty_build(self):
        out = HashJoin(src(k=np.array([], dtype=np.int64)), src(k=[1, 2]), "k", "k").execute()
        assert out.num_rows == 0

    def test_join_with_empty_probe(self):
        out = HashJoin(src(k=[1, 2]), src(k=np.array([], dtype=np.int64)), "k", "k").execute()
        assert out.num_rows == 0

    def test_merge_join_empty(self):
        out = MergeJoin(src(k=np.array([], dtype=np.int64)), src(k=[1]), "k", "k").execute()
        assert out.num_rows == 0

    def test_sort_empty(self):
        out = Sort(src(a=np.array([], dtype=np.int64)), ["a"]).execute()
        assert out.num_rows == 0

    def test_distinct_empty(self):
        out = Distinct(src(a=np.array([], dtype=np.int64)), ["a"]).execute()
        assert out.num_rows == 0

    def test_filter_empty(self):
        out = Filter(src(a=np.array([], dtype=np.int64)), col("a") > 1).execute()
        assert out.num_rows == 0

    def test_aggregate_empty_with_groups(self):
        out = GroupAggregate(
            src(g=np.array([], dtype=np.int64), v=np.array([], dtype=np.float64)),
            ["g"],
            {"s": ("sum", "v")},
        ).execute()
        assert out.num_rows == 0

    def test_global_aggregate_empty(self):
        out = GroupAggregate(
            src(v=np.array([], dtype=np.float64)), [], {"s": ("sum", "v"), "c": ("count", None)}
        ).execute()
        assert out.column("s").tolist() == [0]
        assert out.column("c").tolist() == [0]


class TestStringJoinsAndDistinct:
    def test_hash_join_on_string_keys(self):
        left = src(k=np.array(["a", "b"], dtype=object), lv=[1, 2])
        right = src(k=np.array(["b", "b", "c"], dtype=object), rv=[10, 11, 12])
        out = HashJoin(left, right, "k", "k").execute()
        assert sorted(out.column("rv").tolist()) == [10, 11]

    def test_distinct_on_strings(self):
        out = Distinct(src(s=np.array(["x", "y", "x"], dtype=object)), ["s"]).execute()
        assert sorted(out.column("s").tolist()) == ["x", "y"]

    def test_sort_on_strings(self):
        out = Sort(src(s=np.array(["b", "a", "c"], dtype=object)), ["s"]).execute()
        assert out.column("s").tolist() == ["a", "b", "c"]


class TestScanEdges:
    def test_scan_empty_table(self):
        t = Table.from_arrays("e", {"v": np.array([], dtype=np.int64)})
        out = Scan(t, with_rowids=True).execute()
        assert out.num_rows == 0
        assert ROWID in out

    def test_scan_empty_table_with_predicate(self):
        t = Table.from_arrays("e", {"v": np.array([], dtype=np.int64)})
        out = Scan(t, predicate=col("v") > 0).execute()
        assert out.num_rows == 0

    def test_scan_range_prunes_everything(self):
        t = Table.from_arrays("t", {"v": np.arange(100)}, minmax_block_size=10)
        scan = Scan(t)
        scan.push_range("v", 1_000, 2_000)
        assert scan.execute().num_rows == 0

    def test_predicate_only_column_not_leaked(self):
        t = Table.from_arrays("t", {"a": np.arange(5), "b": np.arange(5) * 2})
        out = Scan(t, columns=["a"], predicate=col("b") > 4).execute()
        assert out.column_names == ["a"]
        assert out.column("a").tolist() == [3, 4]


class TestExpressionHelpers:
    def test_expression_columns_walks_everything(self):
        from repro.engine import where

        expr = where((col("a") > 1) & col("b").isin([1]), col("c"), col("d") + 1)
        assert expression_columns(expr) == {"a", "b", "c", "d"}

    def test_literal_only(self):
        assert expression_columns(lit(5)) == set()


class TestMergeUnionEdges:
    def test_all_empty_inputs(self):
        out = MergeUnion(
            [src(a=np.array([], dtype=np.int64)), src(a=np.array([], dtype=np.int64))], "a"
        ).execute()
        assert out.num_rows == 0

    def test_single_input(self):
        out = MergeUnion([src(a=[1, 2, 3])], "a").execute()
        assert out.column("a").tolist() == [1, 2, 3]

    def test_duplicate_keys_across_inputs(self):
        out = MergeUnion([src(a=[1, 2, 2]), src(a=[2, 3])], "a").execute()
        assert out.column("a").tolist() == [1, 2, 2, 2, 3]

    def test_descending_string_keys_merge(self):
        # the former numeric-negation path raised TypeError here; the
        # k-way merge now handles descending runs of any orderable dtype
        a = src(s=np.array(["b", "a"], dtype=object))
        b = src(s=np.array(["c"], dtype=object))
        out = MergeUnion([a, b], "s", ascending=False).execute()
        assert out.column("s").tolist() == ["c", "b", "a"]
