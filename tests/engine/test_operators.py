"""Unit tests for the physical operators."""

import numpy as np
import pytest

from repro.engine import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    MergeUnion,
    PatchSelect,
    Project,
    Relation,
    RelationSource,
    ReuseCache,
    ReuseLoad,
    Scan,
    Sort,
    Union,
    col,
)
from repro.engine.batch import ROWID
from repro.engine.operators import ReuseSlot, factorize_rows, find_scans
from repro.storage import PartitionedTable, Table


def rel(**cols):
    return Relation({k: np.asarray(v) for k, v in cols.items()})


def src(**cols):
    return RelationSource(rel(**cols))


def make_table(n=100, name="t"):
    return Table.from_arrays(
        name,
        {"k": np.arange(n, dtype=np.int64), "v": (np.arange(n) * 3) % 7},
        minmax_block_size=10,
    )


class TestScan:
    def test_scan_all_columns(self):
        out = Scan(make_table(10)).execute()
        assert out.num_rows == 10
        assert set(out.column_names) == {"k", "v"}

    def test_scan_with_rowids(self):
        out = Scan(make_table(5), with_rowids=True).execute()
        np.testing.assert_array_equal(out.column(ROWID), np.arange(5))

    def test_scan_predicate(self):
        out = Scan(make_table(10), predicate=col("k") < 3).execute()
        assert out.num_rows == 3

    def test_scan_minmax_pruning(self):
        scan = Scan(make_table(100), with_rowids=True)
        scan.push_range("k", 25, 34)
        out = scan.execute()
        # block size is 10, so exactly blocks 2 and 3 survive
        assert out.num_rows == 20
        assert out.column("k").min() == 20 and out.column("k").max() == 39

    def test_scan_partitioned_rowids_are_global(self):
        pt = PartitionedTable.from_table(make_table(40), "k", 4)
        out = Scan(pt, with_rowids=True).execute()
        np.testing.assert_array_equal(np.sort(out.column(ROWID)), np.arange(40))

    def test_scan_column_subset(self):
        out = Scan(make_table(5), columns=["v"]).execute()
        assert out.column_names == ["v"]


class TestPatchSelect:
    def test_modes(self):
        table = make_table(10)
        mask = np.zeros(10, dtype=bool)
        mask[[2, 7]] = True
        scan = Scan(table, with_rowids=True)
        ex = PatchSelect(scan, lambda: mask, "exclude_patches").execute()
        us = PatchSelect(Scan(table, with_rowids=True), lambda: mask, "use_patches").execute()
        assert ex.num_rows == 8 and us.num_rows == 2
        assert set(us.column("k").tolist()) == {2, 7}

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PatchSelect(src(a=[1]), lambda: np.zeros(1, bool), "bogus")

    def test_mask_read_at_execute_time(self):
        table = make_table(4)
        mask = np.zeros(4, dtype=bool)
        op = PatchSelect(Scan(table, with_rowids=True), lambda: mask, "use_patches")
        mask[1] = True  # updated after construction
        assert op.execute().column("k").tolist() == [1]


class TestFilterProject:
    def test_filter(self):
        out = Filter(src(a=[1, 2, 3]), col("a") >= 2).execute()
        assert out.column("a").tolist() == [2, 3]

    def test_project_rename_and_compute(self):
        out = Project(src(a=[1, 2], b=[3, 4]), {"x": "a", "s": col("a") + col("b")}).execute()
        assert out.column("x").tolist() == [1, 2]
        assert out.column("s").tolist() == [4, 6]


class TestJoins:
    def test_hash_join_inner(self):
        left = src(k=[1, 2, 3], lv=[10, 20, 30])
        right = src(k=[2, 3, 3, 4], rv=[200, 300, 301, 400])
        out = HashJoin(left, right, "k", "k").execute()
        rows = sorted(
            zip(out.column("k").tolist(), out.column("lv").tolist(), out.column("rv").tolist())
        )
        assert rows == [(2, 20, 200), (3, 30, 300), (3, 30, 301)]

    def test_hash_join_no_matches(self):
        out = HashJoin(src(k=[1]), src(k=[2]), "k", "k").execute()
        assert out.num_rows == 0

    def test_hash_join_column_collision(self):
        with pytest.raises(ValueError):
            HashJoin(src(k=[1], v=[1]), src(k=[1], v=[2]), "k", "k").execute()

    def test_hash_join_different_key_names(self):
        out = HashJoin(src(a=[1, 2]), src(b=[2, 2]), "a", "b").execute()
        assert out.num_rows == 2
        assert set(out.column_names) == {"a", "b"}

    def test_hash_join_drp_prunes_probe_scan(self):
        table = make_table(100)  # block size 10
        probe = Scan(table, with_rowids=True)
        build = src(k=[42, 44])
        join = HashJoin(build, probe, "k", "k", build_side="left",
                        dynamic_range_propagation=True)
        out = join.execute()
        assert sorted(out.column("k").tolist()) == [42, 44]
        assert probe._ranges == [("k", 42, 44)]

    def test_merge_join_sorted_inputs(self):
        left = src(k=[1, 2, 2, 5], lv=[1, 2, 3, 4])
        right = src(k=[2, 3, 5], rv=[20, 30, 50])
        out = MergeJoin(left, right, "k", "k").execute()
        rows = sorted(zip(out.column("k").tolist(), out.column("rv").tolist()))
        assert rows == [(2, 20), (2, 20), (5, 50)]

    def test_merge_and_hash_join_agree(self):
        rng = np.random.default_rng(0)
        lk = np.sort(rng.integers(0, 50, 200))
        rk = np.sort(rng.integers(0, 50, 100))
        h = HashJoin(src(k=lk), src(j=rk), "k", "j").execute()
        m = MergeJoin(src(k=lk), src(j=rk), "k", "j").execute()
        assert h.num_rows == m.num_rows
        np.testing.assert_array_equal(np.sort(h.column("k")), np.sort(m.column("k")))


class TestSortDistinctAggregate:
    def test_sort(self):
        out = Sort(src(a=[3, 1, 2]), ["a"]).execute()
        assert out.column("a").tolist() == [1, 2, 3]

    def test_sort_descending(self):
        out = Sort(src(a=[3, 1, 2]), ["a"], [False]).execute()
        assert out.column("a").tolist() == [3, 2, 1]

    def test_distinct_single(self):
        out = Distinct(src(a=[2, 1, 2, 1, 3]), ["a"]).execute()
        assert sorted(out.column("a").tolist()) == [1, 2, 3]

    def test_distinct_multi(self):
        out = Distinct(src(a=[1, 1, 2], b=[1, 1, 2])).execute()
        assert out.num_rows == 2

    def test_group_aggregate(self):
        out = GroupAggregate(
            src(g=[1, 1, 2, 2, 2], v=[1.0, 2.0, 3.0, 4.0, 5.0]),
            ["g"],
            {"s": ("sum", "v"), "c": ("count", None), "mn": ("min", "v"),
             "mx": ("max", "v"), "a": ("avg", "v")},
        ).execute()
        out = out.sort_by(["g"])
        assert out.column("s").tolist() == [3.0, 12.0]
        assert out.column("c").tolist() == [2, 3]
        assert out.column("mn").tolist() == [1.0, 3.0]
        assert out.column("mx").tolist() == [2.0, 5.0]
        assert out.column("a").tolist() == [1.5, 4.0]

    def test_group_aggregate_multi_key(self):
        out = GroupAggregate(
            src(a=[1, 1, 2], b=["x", "x", "y"], v=[1, 2, 3]),
            ["a", "b"],
            {"s": ("sum", "v")},
        ).execute()
        assert out.num_rows == 2

    def test_group_aggregate_expression_input(self):
        out = GroupAggregate(
            src(g=[1, 1], v=[2.0, 3.0]),
            ["g"],
            {"s": ("sum", col("v") * 2)},
        ).execute()
        assert out.column("s").tolist() == [10.0]

    def test_global_aggregate(self):
        aggs = {"s": ("sum", "v"), "c": ("count", None)}
        out = GroupAggregate(src(v=[1, 2, 3]), [], aggs).execute()
        assert out.column("s").tolist() == [6]
        assert out.column("c").tolist() == [3]

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            GroupAggregate(src(v=[1]), [], {"m": ("median", "v")})


class TestUnionMerge:
    def test_union(self):
        out = Union([src(a=[1]), src(a=[2, 3])]).execute()
        assert out.column("a").tolist() == [1, 2, 3]

    def test_merge_union_sorted(self):
        out = MergeUnion([src(a=[1, 4, 9]), src(a=[2, 3, 10])], "a").execute()
        assert out.column("a").tolist() == [1, 2, 3, 4, 9, 10]

    def test_merge_union_three_inputs(self):
        out = MergeUnion([src(a=[1, 5]), src(a=[2]), src(a=[0, 9])], "a").execute()
        assert out.column("a").tolist() == [0, 1, 2, 5, 9]

    def test_merge_union_with_empty(self):
        out = MergeUnion([src(a=np.array([], dtype=np.int64)), src(a=[1, 2])], "a").execute()
        assert out.column("a").tolist() == [1, 2]

    def test_merge_union_descending(self):
        out = MergeUnion([src(a=[9, 4, 1]), src(a=[10, 3, 2])], "a", ascending=False).execute()
        assert out.column("a").tolist() == [10, 9, 4, 3, 2, 1]

    def test_merge_union_carries_payload(self):
        out = MergeUnion(
            [src(a=[1, 3], p=["x", "y"]), src(a=[2], p=["z"])], "a"
        ).execute()
        assert out.column("p").tolist() == ["x", "z", "y"]


class TestReuse:
    def test_cache_and_load_share_result(self):
        calls = []

        class Counting(RelationSource):
            def execute(self):
                calls.append(1)
                return super().execute()

        slot = ReuseSlot()
        cache = ReuseCache(Counting(rel(a=[1, 2])), slot)
        load = ReuseLoad(slot)
        assert cache.execute().num_rows == 2
        assert load.execute().num_rows == 2
        assert len(calls) == 1

    def test_load_before_cache_triggers_producer(self):
        slot = ReuseSlot()
        ReuseCache(src(a=[5]), slot)
        assert ReuseLoad(slot).execute().column("a").tolist() == [5]

    def test_empty_slot_raises(self):
        with pytest.raises(RuntimeError):
            ReuseLoad(ReuseSlot()).execute()


class TestLimitMisc:
    def test_limit(self):
        assert Limit(src(a=[1, 2, 3]), 2).execute().num_rows == 2
        assert Limit(src(a=[1]), 5).execute().num_rows == 1
        with pytest.raises(ValueError):
            Limit(src(a=[1]), -1)

    def test_find_scans(self):
        t = make_table(5)
        scan = Scan(t)
        tree = Filter(scan, col("k") > 0)
        assert find_scans(tree) == [scan]

    def test_factorize_rows_single(self):
        codes, first = factorize_rows([np.array([5, 5, 7])])
        assert codes.tolist() == [0, 0, 1]
        assert first.tolist() == [0, 2]

    def test_explain_renders_tree(self):
        t = make_table(5)
        tree = Filter(Scan(t), col("k") > 0)
        text = tree.explain()
        assert "Filter" in text and "Scan" in text
