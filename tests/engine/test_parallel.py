"""Unit tests for the morsel-parallel execution primitives."""

import threading

import numpy as np
import pytest

from repro.engine.parallel import (
    DEFAULT_MORSEL_ROWS,
    ExecutionContext,
    Morsel,
    row_chunks,
    table_morsels,
)
from repro.storage import PartitionedTable, Table


def make_table(n=1000, name="t"):
    return Table.from_arrays(
        name, {"k": np.arange(n, dtype=np.int64), "v": np.arange(n, dtype=np.float64)}
    )


class TestRowChunks:
    def test_exact_cover(self):
        chunks = row_chunks(10, 4)
        assert chunks == [(0, 4), (4, 8), (8, 10)]

    def test_single_chunk(self):
        assert row_chunks(3, 100) == [(0, 3)]

    def test_empty(self):
        assert row_chunks(0, 10) == []

    def test_invalid_chunk_rows(self):
        with pytest.raises(ValueError):
            row_chunks(10, 0)


class TestTableMorsels:
    def test_plain_table_cover(self):
        t = make_table(1000)
        morsels = table_morsels(t, 256)
        assert [m.num_rows for m in morsels] == [256, 256, 256, 232]
        assert [m.rowid_offset for m in morsels] == [0, 256, 512, 768]
        assert all(m.table is t for m in morsels)

    def test_partitioned_table_respects_boundaries(self):
        t = make_table(1000)
        pt = PartitionedTable.from_table(t, "k", 4)
        morsels = table_morsels(pt, 100)
        # morsels never span a partition
        for m in morsels:
            assert m.table in pt.partitions
        # offsets reconstruct the global rowid space contiguously
        total = 0
        for m in morsels:
            assert m.rowid_offset == total
            total += m.num_rows
        assert total == 1000

    def test_default_morsel_rows(self):
        t = make_table(10)
        (m,) = table_morsels(t)
        assert (m.start, m.stop) == (0, 10)
        assert DEFAULT_MORSEL_ROWS > 0


class TestExecutionContext:
    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            ExecutionContext(parallelism=0)

    def test_serial_context_inactive(self):
        ctx = ExecutionContext(parallelism=1)
        assert not ctx.active
        assert not ctx.should_parallelize(10**9)

    def test_map_preserves_order(self):
        with ExecutionContext(parallelism=4) as ctx:
            out = ctx.map(lambda x: x * x, list(range(100)))
        assert out == [x * x for x in range(100)]

    def test_map_propagates_exceptions(self):
        def boom(x):
            if x == 5:
                raise RuntimeError("morsel failed")
            return x

        with ExecutionContext(parallelism=3) as ctx:
            with pytest.raises(RuntimeError, match="morsel failed"):
                ctx.map(boom, list(range(10)))

    def test_map_runs_inline_when_serial(self):
        ctx = ExecutionContext(parallelism=1)
        tid = threading.get_ident()
        tids = ctx.map(lambda _: threading.get_ident(), [1, 2, 3])
        assert set(tids) == {tid}
        assert ctx._pool is None  # no pool was ever created

    def test_map_uses_worker_threads(self):
        with ExecutionContext(parallelism=2) as ctx:
            tids = ctx.map(lambda _: threading.get_ident(), list(range(8)))
        assert threading.get_ident() not in tids

    def test_close_is_idempotent_and_permanent(self):
        ctx = ExecutionContext(parallelism=2)
        ctx.map(lambda x: x, [1, 2, 3])
        ctx.close()
        ctx.close()
        # after close, map degrades to inline execution — correct results,
        # but no pool is ever resurrected (SET parallelism can race an
        # in-flight query without leaking worker threads)
        tid = threading.get_ident()
        assert ctx.map(lambda _: threading.get_ident(), list(range(4))) == [tid] * 4
        assert ctx._pool is None

    def test_should_parallelize_thresholds(self):
        ctx = ExecutionContext(parallelism=4, min_parallel_rows=100)
        assert ctx.should_parallelize(100, num_tasks=2)
        assert not ctx.should_parallelize(99, num_tasks=2)
        assert not ctx.should_parallelize(1000, num_tasks=1)
        ctx.close()

    def test_morsel_dataclass(self):
        m = Morsel(table=None, start=5, stop=9, rowid_offset=105)
        assert m.num_rows == 4


class TestExternalLane:
    """The statement-granular dispatch lane (``submit_external``)."""

    def test_works_even_on_a_serial_context(self):
        # parallelism=1 disables morsel fan-out but a front-end still
        # needs somewhere to push blocking statements off its loop
        with ExecutionContext(parallelism=1) as ctx:
            assert not ctx.active
            fut = ctx.submit_external(lambda a, b: a + b, 2, 3)
            assert fut.result(timeout=10) == 5

    def test_runs_off_the_calling_thread(self):
        with ExecutionContext(parallelism=2) as ctx:
            fut = ctx.submit_external(threading.get_ident)
            assert fut.result(timeout=10) != threading.get_ident()

    def test_external_work_may_fan_out_via_map(self):
        # the lanes are separate pools, so statement-level work calling
        # ctx.map cannot deadlock the morsel workers
        with ExecutionContext(parallelism=2, min_parallel_rows=0) as ctx:
            fut = ctx.submit_external(ctx.map, lambda x: x * x, list(range(6)))
            assert fut.result(timeout=10) == [x * x for x in range(6)]

    def test_external_workers_knob_and_default(self):
        with ExecutionContext(parallelism=3) as ctx:
            assert ctx.external_workers == 3
        with ExecutionContext(parallelism=1) as ctx:
            assert ctx.external_workers == 2
        with ExecutionContext(parallelism=1, external_workers=5) as ctx:
            assert ctx.external_workers == 5
        import pytest as _pytest

        with _pytest.raises(ValueError):
            ExecutionContext(parallelism=1, external_workers=0)

    def test_submit_after_close_raises(self):
        ctx = ExecutionContext(parallelism=2)
        ctx.submit_external(lambda: None).result(timeout=10)
        ctx.close()
        import pytest as _pytest

        with _pytest.raises(RuntimeError):
            ctx.submit_external(lambda: None)

    def test_close_waits_for_external_work(self):
        ctx = ExecutionContext(parallelism=2)
        done = []
        gate = threading.Event()

        def work():
            gate.wait(10)
            done.append(True)

        fut = ctx.submit_external(work)
        t = threading.Thread(target=ctx.close)
        t.start()
        gate.set()
        t.join(timeout=10)
        assert not t.is_alive()
        assert fut.done() and done == [True]
