"""TopN operator equivalence and partition-affinity morsel dispatch."""

import numpy as np
import pytest

from repro.engine import operators as ops
from repro.engine.batch import Relation
from repro.engine.parallel import ExecutionContext
from repro.storage import PartitionedTable, Table


def make_table(n, seed, name="t"):
    rng = np.random.default_rng(seed)
    return Table.from_arrays(name, {
        # heavy ties: stability of the (keys, position) order matters
        "a": rng.integers(0, 7, n).astype(np.int64),
        "b": rng.integers(0, 50, n).astype(np.int64),
        "payload": np.arange(n, dtype=np.int64),
    })


def reference_topn(table, keys, ascending, n):
    """Full stable sort, then the first n rows."""
    rel = ops.Sort(ops.Scan(table), keys, ascending).execute()
    return rel.take(np.arange(min(n, rel.num_rows)))


def assert_rel_equal(expected, actual):
    assert actual.num_rows == expected.num_rows
    assert actual.column_names == expected.column_names
    for name in expected.column_names:
        np.testing.assert_array_equal(actual.column(name), expected.column(name))


class TestTopNOperator:
    @pytest.mark.parametrize("n", [0, 1, 7, 100, 4999, 5000, 9000])
    def test_matches_sort_then_limit(self, n):
        table = make_table(5000, seed=1)
        expected = reference_topn(table, ["a", "b"], [True, True], n)
        got = ops.TopN(ops.Scan(table), ["a", "b"], [True, True], n).execute()
        assert_rel_equal(expected, got)

    def test_descending_and_mixed_directions(self):
        table = make_table(3000, seed=2)
        for ascending in ([False, False], [False, True], [True, False]):
            expected = reference_topn(table, ["a", "b"], ascending, 40)
            got = ops.TopN(ops.Scan(table), ["a", "b"], ascending, 40).execute()
            assert_rel_equal(expected, got)

    def test_all_ties_keeps_original_positions(self):
        table = Table.from_arrays("ties", {
            "k": np.zeros(1000, dtype=np.int64),
            "pos": np.arange(1000, dtype=np.int64),
        })
        got = ops.TopN(ops.Scan(table), ["k"], [True], 10).execute()
        np.testing.assert_array_equal(got.column("pos"), np.arange(10))

    def test_negative_n_rejected(self):
        table = make_table(10, seed=3)
        with pytest.raises(ValueError):
            ops.TopN(ops.Scan(table), ["a"], [True], -1)

    @pytest.mark.parametrize("n", [0, 3, 64, 500, 20_000])
    def test_parallel_matches_serial(self, n):
        table = make_table(20_000, seed=4)
        serial = ops.TopN(ops.Scan(table), ["a", "b"], [True, False], n).execute()
        with ExecutionContext(
            parallelism=4, morsel_rows=1024, min_parallel_rows=1
        ) as ctx:
            op = ops.TopN(ops.Scan(table), ["a", "b"], [True, False], n)
            op.bind_context(ctx)
            parallel = op.execute()
        assert_rel_equal(serial, parallel)

    def test_parallel_matches_full_sort(self):
        table = make_table(20_000, seed=5)
        expected = reference_topn(table, ["b"], [True], 77)
        with ExecutionContext(
            parallelism=4, morsel_rows=2048, min_parallel_rows=1
        ) as ctx:
            op = ops.TopN(ops.Scan(table), ["b"], [True], 77)
            op.bind_context(ctx)
            got = op.execute()
        assert_rel_equal(expected, got)

    def test_forced_serial_mode_skips_the_pool(self):
        table = make_table(20_000, seed=6)

        class ExplodingContext(ExecutionContext):
            def map(self, fn, items):
                raise AssertionError("forced-serial operator used the pool")

        op = ops.TopN(ops.Scan(table), ["a"], [True], 10)
        op.forced_mode = "serial"
        op.bind_context(ExplodingContext(parallelism=4, min_parallel_rows=1))
        expected = reference_topn(table, ["a"], [True], 10)
        assert_rel_equal(expected, op.execute())


class _SpyContext(ExecutionContext):
    """Records every map_grouped dispatch for affinity assertions."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.grouped_calls = []

    def map_grouped(self, fn, items, keys):
        self.grouped_calls.append(
            [(key, id(thunk.morsel.table)) for key, thunk in zip(keys, items)]
        )
        return super().map_grouped(fn, items, keys)


class TestPartitionAffinity:
    def partitioned(self, n=40_000, parts=4):
        rng = np.random.default_rng(9)
        table = Table.from_arrays("pt", {
            "k": np.sort(rng.integers(0, 1000, n)).astype(np.int64),
            "v": rng.integers(0, 100, n).astype(np.int64),
        })
        return PartitionedTable.from_table(table, "k", parts)

    def run_filtered_scan(self, ctx, table):
        from repro.engine import col

        op = ops.Scan(table, predicate=col("v") < 50)
        op.bind_context(ctx)
        return op.execute()

    def test_no_group_spans_partitions(self):
        table = self.partitioned()
        with _SpyContext(
            parallelism=4, morsel_rows=1024, min_parallel_rows=1
        ) as ctx:
            result = self.run_filtered_scan(ctx, table)
        assert result.num_rows > 0
        assert ctx.grouped_calls, "morsel scan did not use grouped dispatch"
        for call in ctx.grouped_calls:
            owner = {}
            for key, table_id in call:
                # a group (shared key) must stay within one partition
                assert owner.setdefault(key, table_id) == table_id

    def test_partitions_split_into_stripes(self):
        table = self.partitioned(parts=2)
        with _SpyContext(
            parallelism=8, morsel_rows=1024, min_parallel_rows=1
        ) as ctx:
            self.run_filtered_scan(ctx, table)
        call = ctx.grouped_calls[0]
        keys_per_partition = {}
        for key, table_id in call:
            keys_per_partition.setdefault(table_id, set()).add(key)
        # with workers to spare, each partition fans out over >1 group
        # so affinity does not serialize the whole partition
        assert all(len(keys) > 1 for keys in keys_per_partition.values())

    def test_grouped_dispatch_is_bit_identical_to_serial(self):
        table = self.partitioned()
        from repro.engine import col

        serial_op = ops.Scan(table, predicate=col("v") < 50)
        expected = serial_op.execute()
        with _SpyContext(
            parallelism=4, morsel_rows=1024, min_parallel_rows=1
        ) as ctx:
            got = self.run_filtered_scan(ctx, table)
        assert got.num_rows == expected.num_rows
        for name in expected.column_names:
            np.testing.assert_array_equal(got.column(name), expected.column(name))
