"""Unit tests for relations and expressions."""

import numpy as np
import pytest

from repro.engine import Relation, col, lit, where


def rel(**cols):
    return Relation({k: np.asarray(v) for k, v in cols.items()})


class TestRelation:
    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            rel(a=[1, 2], b=[1])

    def test_shape(self):
        r = rel(a=[1, 2, 3])
        assert r.num_rows == 3 and len(r) == 3
        assert r.column_names == ["a"]
        assert "a" in r and "b" not in r

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            rel(a=[1]).column("b")

    def test_take_filter_select(self):
        r = rel(a=[1, 2, 3], b=[10, 20, 30])
        np.testing.assert_array_equal(r.take(np.array([2, 0])).column("a"), [3, 1])
        np.testing.assert_array_equal(r.filter(np.array([True, False, True])).column("b"), [10, 30])
        assert r.select(["b"]).column_names == ["b"]

    def test_rename_and_drop(self):
        r = rel(a=[1], b=[2])
        assert set(r.rename({"a": "x"}).column_names) == {"x", "b"}
        assert r.drop(["a"]).column_names == ["b"]

    def test_with_column(self):
        r = rel(a=[1, 2])
        r2 = r.with_column("c", np.array([5, 6]))
        np.testing.assert_array_equal(r2.column("c"), [5, 6])
        with pytest.raises(ValueError):
            r.with_column("c", np.array([5]))

    def test_concat(self):
        r = Relation.concat([rel(a=[1]), rel(a=[2, 3])])
        np.testing.assert_array_equal(r.column("a"), [1, 2, 3])

    def test_concat_mismatched(self):
        with pytest.raises(ValueError):
            Relation.concat([rel(a=[1]), rel(b=[2])])

    def test_sort_by_multi_key(self):
        r = rel(a=[2, 1, 2, 1], b=[1, 2, 0, 1])
        s = r.sort_by(["a", "b"])
        assert s.to_rows() == [(1, 1), (1, 2), (2, 0), (2, 1)]

    def test_sort_by_descending(self):
        r = rel(a=[1, 3, 2])
        assert r.sort_by(["a"], [False]).column("a").tolist() == [3, 2, 1]

    def test_empty_like(self):
        e = Relation.empty_like(rel(a=[1, 2]))
        assert e.num_rows == 0 and e.column_names == ["a"]


class TestExpressions:
    def test_comparisons(self):
        r = rel(x=[1, 2, 3])
        np.testing.assert_array_equal((col("x") > 1).evaluate(r), [False, True, True])
        np.testing.assert_array_equal((col("x") == 2).evaluate(r), [False, True, False])
        np.testing.assert_array_equal((col("x") <= 2).evaluate(r), [True, True, False])
        np.testing.assert_array_equal((col("x") != 2).evaluate(r), [True, False, True])

    def test_boolean_connectives(self):
        r = rel(x=[1, 2, 3, 4])
        e = (col("x") > 1) & (col("x") < 4)
        np.testing.assert_array_equal(e.evaluate(r), [False, True, True, False])
        e = (col("x") == 1) | (col("x") == 4)
        np.testing.assert_array_equal(e.evaluate(r), [True, False, False, True])
        np.testing.assert_array_equal((~(col("x") > 2)).evaluate(r), [True, True, False, False])

    def test_arithmetic(self):
        r = rel(x=[1.0, 2.0], y=[10.0, 20.0])
        np.testing.assert_array_equal((col("x") + col("y")).evaluate(r), [11, 22])
        np.testing.assert_array_equal((col("y") * (lit(1) - lit(0.5))).evaluate(r), [5, 10])
        np.testing.assert_array_equal((1 - col("x")).evaluate(r), [0, -1])

    def test_string_literal_broadcast(self):
        r = rel(s=np.array(["a", "b"], dtype=object))
        np.testing.assert_array_equal((col("s") == lit("a")).evaluate(r), [True, False])

    def test_isin(self):
        r = rel(s=np.array(["MAIL", "SHIP", "AIR"], dtype=object))
        np.testing.assert_array_equal(
            col("s").isin(["MAIL", "SHIP"]).evaluate(r), [True, True, False]
        )

    def test_where(self):
        r = rel(x=[1, 5, 10])
        out = where(col("x") > 4, col("x"), 0).evaluate(r)
        np.testing.assert_array_equal(out, [0, 5, 10])
