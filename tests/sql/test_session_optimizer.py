"""Staged optimizer through the SQL surface: SET knob, EXPLAIN, TopN."""

import asyncio

import numpy as np
import pytest

from repro.core import PatchIndexManager
from repro.plan.stats import analyze_table
from repro.sql import AsyncSQLSession, SQLSession
from repro.storage import Catalog
from repro.workloads import generate_tpch

#: Parser order starts from the fact table; DP should flip it around.
BACKWARDS_Q3 = (
    "SELECT c_custkey, o_orderdate, l_extendedprice FROM lineitem "
    "JOIN orders ON l_orderkey = o_orderkey "
    "JOIN customer ON o_custkey = c_custkey"
)


@pytest.fixture
def session():
    catalog = Catalog()
    generate_tpch(scale=0.002, seed=3).register(catalog)
    for name in ("customer", "orders", "lineitem", "supplier", "nation"):
        analyze_table(catalog, name)
    with SQLSession(catalog, index_manager=PatchIndexManager(catalog)) as s:
        yield s


def assert_bit_identical(reference, result):
    assert result.num_rows == reference.num_rows
    assert result.column_names == reference.column_names
    for name in reference.column_names:
        np.testing.assert_array_equal(result.column(name), reference.column(name))


class TestJoinOrderKnob:
    def test_default_is_dp(self, session):
        assert session.join_order_search == "dp"
        assert session.optimizer.join_order_search == "dp"

    @pytest.mark.parametrize("strategy", ["greedy", "off", "dp"])
    def test_set_statement_routes_to_optimizer(self, session, strategy):
        session.execute(f"SET join_order_search = {strategy}")
        assert session.join_order_search == strategy
        assert session.optimizer.join_order_search == strategy

    def test_unknown_strategy_rejected(self, session):
        with pytest.raises(ValueError, match="join_order_search"):
            session.execute("SET join_order_search = sideways")
        assert session.join_order_search == "dp"  # unchanged

    def test_non_string_value_rejected(self, session):
        with pytest.raises(TypeError):
            session.set_join_order_search(3)

    def test_async_session_accepts_the_knob(self):
        catalog = Catalog()
        generate_tpch(scale=0.002, seed=3).register(catalog)
        for name in ("customer", "orders", "lineitem"):
            analyze_table(catalog, name)

        async def scenario():
            async with AsyncSQLSession(
                catalog, index_manager=PatchIndexManager(catalog)
            ) as s:
                await s.execute("SET join_order_search = greedy")
                strategy = s.join_order_search
                return strategy, await s.execute(BACKWARDS_Q3)

        strategy, result = asyncio.run(asyncio.wait_for(scenario(), 60.0))
        assert strategy == "greedy"
        assert result.num_rows > 0


class TestExplain:
    def test_costs_surface_order_and_assignments(self, session):
        text = session.explain(BACKWARDS_Q3, costs=True)
        assert "join order search:" in text
        assert "operator assignments:" in text
        assert "admission cost hint:" in text
        assert "[JoinOperatorSelection]" in text
        assert "[ParallelVariantSelection]" in text

    def test_dp_picks_non_parser_order_with_lower_cost(self, session):
        text = session.explain(BACKWARDS_Q3, costs=True)
        line = next(
            ln for ln in text.splitlines() if ln.strip().startswith("join order [dp]")
        )
        assert "parser order kept" not in line
        assert "<" in line  # strictly lower modeled cost than the parser order
        # the chosen order leads with a smaller relation, not lineitem
        assert not line.split(":", 1)[1].strip().startswith("lineitem")

    def test_off_keeps_parser_shape(self, session):
        session.execute("SET join_order_search = off")
        text = session.explain(BACKWARDS_Q3, costs=True)
        assert "join order search:" not in text
        # parser shape: lineitem scanned in the innermost join
        plain = session.explain(BACKWARDS_Q3)
        assert plain.index("Scan(lineitem)") < plain.index("Scan(customer)")

    def test_explain_without_costs_is_just_the_plan(self, session):
        text = session.explain(BACKWARDS_Q3)
        assert "operator assignments:" not in text
        assert "admission cost hint:" not in text


class TestReorderedExecution:
    @pytest.mark.parametrize("strategy", ["dp", "greedy"])
    def test_bit_identical_to_search_off(self, session, strategy):
        session.execute("SET join_order_search = off")
        reference = session.execute(BACKWARDS_Q3)
        session.execute(f"SET join_order_search = {strategy}")
        assert_bit_identical(reference, session.execute(BACKWARDS_Q3))

    def test_five_way_join_bit_identical(self, session):
        sql = (
            "SELECT n_name, l_extendedprice FROM lineitem "
            "JOIN orders ON l_orderkey = o_orderkey "
            "JOIN customer ON o_custkey = c_custkey "
            "JOIN supplier ON l_suppkey = s_suppkey "
            "JOIN nation ON s_nationkey = n_nationkey"
        )
        session.execute("SET join_order_search = off")
        reference = session.execute(sql)
        session.execute("SET join_order_search = dp")
        assert_bit_identical(reference, session.execute(sql))

    def test_filtered_query_bit_identical(self, session):
        sql = (
            "SELECT c_custkey, l_extendedprice FROM lineitem "
            "JOIN orders ON l_orderkey = o_orderkey "
            "JOIN customer ON o_custkey = c_custkey "
            "WHERE o_orderdate < 5000"
        )
        session.execute("SET join_order_search = off")
        reference = session.execute(sql)
        session.execute("SET join_order_search = dp")
        assert_bit_identical(reference, session.execute(sql))


class TestTopNThroughSQL:
    def test_order_by_limit_becomes_topn(self, session):
        text = session.explain(
            "SELECT l_orderkey FROM lineitem ORDER BY l_extendedprice LIMIT 5",
            costs=True,
        )
        assert "TopN(" in text
        assert "[TopNSelection]" in text

    def test_topn_rows_match_full_sort(self, session):
        full = session.execute(
            "SELECT l_orderkey, l_extendedprice FROM lineitem "
            "ORDER BY l_extendedprice"
        )
        limited = session.execute(
            "SELECT l_orderkey, l_extendedprice FROM lineitem "
            "ORDER BY l_extendedprice LIMIT 25"
        )
        assert limited.num_rows == 25
        for name in full.column_names:
            np.testing.assert_array_equal(
                limited.column(name), full.column(name)[:25]
            )

    def test_descending_topn_matches(self, session):
        full = session.execute(
            "SELECT o_orderkey, o_orderdate FROM orders ORDER BY o_orderdate DESC"
        )
        limited = session.execute(
            "SELECT o_orderkey, o_orderdate FROM orders "
            "ORDER BY o_orderdate DESC LIMIT 10"
        )
        for name in full.column_names:
            np.testing.assert_array_equal(
                limited.column(name), full.column(name)[:10]
            )

    def test_limit_larger_than_payoff_keeps_sort(self, session):
        text = session.explain(
            "SELECT c_custkey FROM customer ORDER BY c_custkey LIMIT 300",
            costs=True,
        )
        assert "TopN(" not in text
        assert "Sort(" in text
