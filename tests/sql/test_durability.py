"""Durability knobs and durable-session semantics at the SQL layer.

Satellite contract: ``wal_sync``, ``checkpoint_interval`` and
``data_dir`` are validated with the same ``validate_*`` discipline as
``parallelism`` — a bad value raises at ``SET``, at the
:class:`~repro.sql.SQLSession` constructor, and at the
:class:`~repro.sql.AsyncSQLSession` constructor alike.
"""

import asyncio

import numpy as np
import pytest

from repro.sql import AsyncSQLSession, SQLSession
from repro.storage import Catalog, Table, WALError, recovery


def make_catalog():
    cat = Catalog()
    cat.register(
        Table.from_arrays(
            "t",
            {"a": np.arange(30, dtype=np.int64), "b": np.zeros(30)},
        )
    )
    return cat


# ----------------------------------------------------------------------
# knob validation: SET, sync ctor, async ctor
# ----------------------------------------------------------------------
BAD_WAL_SYNC = [("always", ValueError), ("", ValueError), (3, TypeError), (True, TypeError)]
BAD_INTERVAL = [(0, ValueError), (-4, ValueError), (1.5, TypeError), (True, TypeError)]


@pytest.mark.parametrize("bad,exc", BAD_WAL_SYNC)
def test_ctor_rejects_bad_wal_sync(bad, exc):
    with pytest.raises(exc):
        SQLSession(make_catalog(), wal_sync=bad)


@pytest.mark.parametrize("bad,exc", BAD_INTERVAL)
def test_ctor_rejects_bad_checkpoint_interval(bad, exc):
    with pytest.raises(exc):
        SQLSession(make_catalog(), checkpoint_interval=bad)


def test_ctor_rejects_bad_data_dir(tmp_path):
    with pytest.raises(TypeError):
        SQLSession(make_catalog(), data_dir=7)
    file_path = tmp_path / "plain_file"
    file_path.write_text("x")
    with pytest.raises(ValueError):
        SQLSession(make_catalog(), data_dir=str(file_path))


@pytest.mark.parametrize("bad,exc", BAD_WAL_SYNC)
def test_async_ctor_rejects_bad_wal_sync(bad, exc):
    async def go():
        with pytest.raises(exc):
            AsyncSQLSession(make_catalog(), wal_sync=bad)

    asyncio.run(go())


@pytest.mark.parametrize("bad,exc", BAD_INTERVAL)
def test_async_ctor_rejects_bad_checkpoint_interval(bad, exc):
    async def go():
        with pytest.raises(exc):
            AsyncSQLSession(make_catalog(), checkpoint_interval=bad)

    asyncio.run(go())


def test_set_rejects_bad_values():
    s = SQLSession(make_catalog())
    with pytest.raises(ValueError):
        s.execute("SET wal_sync = always")
    with pytest.raises(ValueError):
        s.execute("SET checkpoint_interval = 0")
    with pytest.raises(TypeError):
        s.execute("SET checkpoint_interval = 1.5")
    with pytest.raises(ValueError):
        s.execute("SET data_dir = somewhere")  # constructor-only knob


def test_set_accepts_good_values():
    s = SQLSession(make_catalog())
    s.execute("SET wal_sync = group")
    assert s.wal_sync == "group"
    s.execute("SET wal_sync = 'off'")
    assert s.wal_sync == "off"
    s.execute("SET checkpoint_interval = 16")
    assert s.checkpoint_interval == 16
    s.execute("SET checkpoint_interval = off")
    assert s.checkpoint_interval is None


# ----------------------------------------------------------------------
# durable-session semantics
# ----------------------------------------------------------------------
def test_auto_checkpoint_on_interval(tmp_path):
    s = SQLSession(make_catalog(), data_dir=str(tmp_path), checkpoint_interval=3)
    for i in range(7):
        s.execute(f"UPDATE t SET b = b + 1 WHERE a = {i}")
    ckpts = recovery.list_checkpoints(str(tmp_path))
    # initial checkpoint at seq 0 plus auto checkpoints as the interval
    # is crossed (at the start of commits 4 and 7)
    assert [seq for seq, _ in ckpts][-2:] == [3, 6]
    s.close()


def test_set_statements_are_replayed(tmp_path):
    s = SQLSession(make_catalog(), data_dir=str(tmp_path), wal_sync="off")
    s.execute("SET wal_sync = fsync")
    s.execute("SET checkpoint_interval = 5")
    s.execute("UPDATE t SET b = 1.0 WHERE a < 3")
    del s  # crash: no close, no checkpoint — reopen replays the WAL
    s2 = SQLSession(make_catalog(), data_dir=str(tmp_path), wal_sync="off")
    assert s2.wal_sync == "fsync"
    assert s2.checkpoint_interval == 5
    assert float(s2.catalog.table("t").column("b")[:3].sum()) == 3.0
    s2.close()


def test_writes_after_close_raise(tmp_path):
    s = SQLSession(make_catalog(), data_dir=str(tmp_path))
    s.execute("UPDATE t SET b = 1.0 WHERE a = 0")
    s.close()
    with pytest.raises(WALError):
        s.execute("UPDATE t SET b = 2.0 WHERE a = 0")


def test_close_is_idempotent(tmp_path):
    s = SQLSession(make_catalog(), data_dir=str(tmp_path))
    s.execute("DELETE FROM t WHERE a = 0")
    s.close()
    s.close()


def test_zero_row_writes_are_logged(tmp_path):
    """Zero-row UPDATE/DELETE still commit (and are acked with a commit
    sequence by the async layer), so they must occupy a WAL slot —
    otherwise the log and the ack stream disagree about sequencing."""
    s = SQLSession(make_catalog(), data_dir=str(tmp_path))
    s.execute("UPDATE t SET b = 9.0 WHERE a = -1")  # matches nothing
    s.execute("DELETE FROM t WHERE a = -1")
    s.execute("UPDATE t SET b = 1.0 WHERE a = 0")
    records = recovery.read_records(str(tmp_path))
    writes = [r for r in records if r.kind == "write"]
    assert len(writes) == 3
    assert [r.seq for r in records] == list(range(1, len(records) + 1))
    s.close()


def test_forced_checkpoint_returns_path(tmp_path):
    s = SQLSession(make_catalog(), data_dir=str(tmp_path))
    s.execute("UPDATE t SET b = 1.0 WHERE a = 0")
    path = s.checkpoint()
    assert path is not None and path.endswith(".ckpt")
    s.close()


def test_non_durable_session_checkpoint_is_noop():
    s = SQLSession(make_catalog())
    assert s.checkpoint() is None
    assert s.data_dir is None
    assert s.durability is None


def test_select_and_failed_write_leave_no_wal_record(tmp_path):
    s = SQLSession(make_catalog(), data_dir=str(tmp_path))
    s.execute("SELECT a FROM t WHERE a < 5")
    with pytest.raises(Exception):
        s.execute("UPDATE nope SET b = 1.0")
    assert recovery.read_records(str(tmp_path)) == []
    s.close()


# ----------------------------------------------------------------------
# async wiring
# ----------------------------------------------------------------------
def test_async_session_durability_round_trip(tmp_path):
    async def writer():
        session = AsyncSQLSession(
            make_catalog(), data_dir=str(tmp_path), wal_sync="fsync"
        )
        try:
            assert session.data_dir == str(tmp_path)
            assert session.wal_sync == "fsync"
            for i in range(5):
                await session.execute(f"UPDATE t SET b = b + 1 WHERE a = {i}")
        finally:
            await session.aclose()

    asyncio.run(writer())
    s2 = SQLSession(make_catalog(), data_dir=str(tmp_path))
    np.testing.assert_array_equal(
        s2.catalog.table("t").column("b")[:6],
        np.array([1.0, 1.0, 1.0, 1.0, 1.0, 0.0]),
    )
    # aclose drained and checkpointed: reopen replays nothing
    assert s2.durability.recovery_report.records_replayed == 0
    s2.close()
