"""Morsel-parallel DML: parallel UPDATE/DELETE must be bit-identical.

The session evaluates UPDATE/DELETE predicates per morsel on the shared
execution context (see :meth:`repro.sql.session.SQLSession.
_predicate_rowids`).  This suite pins the bit-identity contract over
``parallelism`` in {1, 2, 8}: matched rowids, post-DML table state on
TPC-H and randomized workloads, plus the satellite guarantees — only
predicate/assignment-referenced columns are materialized, and the
``parallelism`` knobs reject invalid input.
"""

import numpy as np
import pytest

from repro.engine.parallel import ExecutionContext, validate_parallelism
from repro.sql.parser import parse_statement
from repro.sql.session import SQLSession
from repro.storage import Catalog, Table
from repro.storage.table import Table as StorageTable
from repro.workloads import generate_tpch

PARALLELISMS = [1, 2, 8]
#: Tiny morsels force many parallel tasks even on test-sized tables.
MORSEL_ROWS = 1024


def make_random_catalog(seed: int = 0, n: int = 50_000) -> Catalog:
    rng = np.random.default_rng(seed)
    table = Table.from_arrays(
        "events",
        {
            "eid": np.arange(n, dtype=np.int64),
            "grp": rng.integers(0, 97, n).astype(np.int64),
            "val": rng.random(n),
            "payload": rng.integers(0, 1 << 40, n).astype(np.int64),
        },
    )
    catalog = Catalog()
    catalog.register(table)
    return catalog


def make_tpch_catalog() -> Catalog:
    data = generate_tpch(scale=0.002, seed=5)
    catalog = Catalog()
    for table in (data.orders, data.lineitem):
        catalog.register(table)
    return catalog


def session_for(catalog: Catalog, parallelism: int) -> SQLSession:
    return SQLSession(catalog, parallelism=parallelism, morsel_rows=MORSEL_ROWS)


def assert_tables_identical(a: Table, b: Table) -> None:
    assert a.num_rows == b.num_rows
    for name in a.schema.names:
        x, y = a.column(name), b.column(name)
        assert x.dtype == y.dtype, name
        np.testing.assert_array_equal(x, y, err_msg=name)


RANDOM_STATEMENTS = [
    "UPDATE events SET val = val * 2 WHERE grp < 30",
    "UPDATE events SET grp = grp + 1, val = val / 2 WHERE val > 0.75",
    "DELETE FROM events WHERE grp % 7 = 3",
    "UPDATE events SET payload = 0 WHERE eid % 11 = 0",
    "DELETE FROM events WHERE val < 0.05",
]

TPCH_STATEMENTS = [
    "UPDATE lineitem SET l_extendedprice = l_extendedprice * 1.05 WHERE l_discount > 0.04",
    "DELETE FROM lineitem WHERE l_shipdate > l_receiptdate",
    "UPDATE orders SET o_shippriority = 1 WHERE o_orderdate < 2500",
    "DELETE FROM orders WHERE o_orderkey % 13 = 0",
]


class TestMatchedRowidEquivalence:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_predicate_rowids_match_serial(self, parallelism):
        catalog = make_random_catalog()
        table = catalog.table("events")
        stmt = parse_statement("DELETE FROM events WHERE val > 0.5")
        serial = SQLSession(catalog)
        want = serial._predicate_rowids(table, stmt.predicate)
        with session_for(catalog, parallelism) as session:
            got = session._predicate_rowids(table, stmt.predicate)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, want)

    def test_rowids_sorted_and_unique_under_parallelism(self):
        catalog = make_random_catalog(seed=9)
        table = catalog.table("events")
        stmt = parse_statement("DELETE FROM events WHERE grp >= 50")
        with session_for(catalog, 8) as session:
            rowids = session._predicate_rowids(table, stmt.predicate)
        assert np.all(np.diff(rowids) > 0)

    def test_column_free_predicate(self):
        catalog = make_random_catalog(seed=2, n=2000)
        table = catalog.table("events")
        with session_for(catalog, 2) as session:
            none_match = session._predicate_rowids(
                table, parse_statement("DELETE FROM events WHERE 1 = 0").predicate
            )
            all_match = session._predicate_rowids(
                table, parse_statement("DELETE FROM events WHERE 1 = 1").predicate
            )
        assert none_match.size == 0
        np.testing.assert_array_equal(all_match, table.rowids())

    def test_unknown_predicate_column_is_clear_error(self):
        catalog = make_random_catalog(seed=3, n=100)
        with session_for(catalog, 2) as session:
            with pytest.raises(KeyError):
                session.execute("DELETE FROM events WHERE nosuch > 1")


class TestDMLStateEquivalence:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_randomized_workload(self, parallelism):
        serial_catalog = make_random_catalog(seed=1)
        parallel_catalog = make_random_catalog(seed=1)
        serial = SQLSession(serial_catalog)
        with session_for(parallel_catalog, parallelism) as parallel:
            for sql in RANDOM_STATEMENTS:
                assert serial.execute(sql) == parallel.execute(sql), sql
                assert_tables_identical(
                    serial_catalog.table("events"), parallel_catalog.table("events")
                )

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_tpch_workload(self, parallelism):
        serial_catalog = make_tpch_catalog()
        parallel_catalog = make_tpch_catalog()
        serial = SQLSession(serial_catalog)
        with session_for(parallel_catalog, parallelism) as parallel:
            for sql in TPCH_STATEMENTS:
                assert serial.execute(sql) == parallel.execute(sql), sql
        for name in ("lineitem", "orders"):
            assert_tables_identical(
                serial_catalog.table(name), parallel_catalog.table(name)
            )

    def test_set_parallelism_midstream_dml(self):
        a = make_random_catalog(seed=4)
        b = make_random_catalog(seed=4)
        serial = SQLSession(a)
        with SQLSession(b, morsel_rows=MORSEL_ROWS) as switching:
            for i, sql in enumerate(RANDOM_STATEMENTS):
                switching.execute(f"SET parallelism = {1 + (i % 2) * 7}")
                assert serial.execute(sql) == switching.execute(sql), sql
        assert_tables_identical(a.table("events"), b.table("events"))


class TestReferencedColumnsOnly:
    """Satellite: DML must not materialize columns it does not touch."""

    @pytest.fixture()
    def spied_column(self, monkeypatch):
        calls = []
        original = StorageTable.column

        def spy(self, name):
            calls.append(name)
            return original(self, name)

        monkeypatch.setattr(StorageTable, "column", spy)
        return calls

    def test_delete_reads_only_predicate_columns(self, spied_column):
        catalog = make_random_catalog(seed=6, n=5000)
        session = SQLSession(catalog)
        spied_column.clear()
        session.execute("DELETE FROM events WHERE grp > 90")
        assert set(spied_column) == {"grp"}

    def test_update_reads_only_referenced_columns(self, spied_column):
        catalog = make_random_catalog(seed=6, n=5000)
        session = SQLSession(catalog)
        spied_column.clear()
        session.execute("UPDATE events SET val = val + 1 WHERE grp > 90")
        assert set(spied_column) == {"grp", "val"}
        assert "payload" not in spied_column and "eid" not in spied_column

    def test_literal_update_reads_only_predicate_columns(self, spied_column):
        catalog = make_random_catalog(seed=6, n=5000)
        session = SQLSession(catalog)
        spied_column.clear()
        session.execute("UPDATE events SET val = 0 WHERE grp > 90")
        assert set(spied_column) == {"grp"}

    def test_parallel_path_reads_only_predicate_columns(self, spied_column):
        catalog = make_random_catalog(seed=6)
        with session_for(catalog, 4) as session:
            spied_column.clear()
            session.execute("DELETE FROM events WHERE grp > 90")
        assert set(spied_column) == {"grp"}


class TestParallelismValidation:
    """Satellite: SET / constructor parallelism inputs are validated."""

    def test_validate_parallelism_contract(self):
        assert validate_parallelism(3) == 3
        assert validate_parallelism(np.int64(2)) == 2
        for bad in (0, -1, -8):
            with pytest.raises(ValueError):
                validate_parallelism(bad)
        for bad in (2.5, 1.0, "4", None, True, False):
            with pytest.raises(TypeError):
                validate_parallelism(bad)

    def test_set_statement_rejects_invalid_values(self):
        catalog = make_random_catalog(seed=7, n=100)
        session = SQLSession(catalog)
        with pytest.raises(ValueError):
            session.execute("SET parallelism = 0")
        with pytest.raises(ValueError):
            session.execute("SET parallelism = -3")
        with pytest.raises(TypeError):
            session.execute("SET parallelism = 2.5")
        with pytest.raises(TypeError):
            session.execute("SET parallelism = many")
        assert session.parallelism == 1  # knob untouched by failed SETs

    def test_constructor_rejects_invalid_values(self):
        catalog = make_random_catalog(seed=7, n=100)
        with pytest.raises(ValueError):
            SQLSession(catalog, parallelism=0)
        with pytest.raises(TypeError):
            SQLSession(catalog, parallelism=1.5)
        with pytest.raises(ValueError):
            ExecutionContext(parallelism=-2)
        with pytest.raises(TypeError):
            ExecutionContext(parallelism="8")


class TestDMLCostModel:
    def test_parallel_dml_scan_is_cheaper_at_scale(self):
        from repro.plan.cost import CostModel

        catalog = make_random_catalog(seed=8, n=100)
        serial = CostModel(catalog, parallelism=1)
        parallel = CostModel(catalog, parallelism=8)
        rows = 4_000_000
        assert parallel.dml_scan_cost(rows) < serial.dml_scan_cost(rows)
        # tiny statements stay serial: no phantom dispatch overhead
        assert parallel.dml_scan_cost(100) == serial.dml_scan_cost(100)
        # the write tail is serial and identical under both models
        diff = parallel.dml_cost(rows, 1000) - parallel.dml_scan_cost(rows)
        assert diff == pytest.approx(CostModel.COST_DML_WRITE * 1000)

    def test_payoff_respects_morsel_size(self):
        from repro.plan.cost import CostModel

        catalog = make_random_catalog(seed=8, n=100)
        serial = CostModel(catalog, parallelism=1)
        assert not serial.dml_parallel_payoff(10_000_000)
        parallel = CostModel(catalog, parallelism=8)
        assert parallel.dml_parallel_payoff(4_000_000)
        # sub-morsel inputs cannot fan out, so there is no payoff ...
        assert not parallel.dml_parallel_payoff(30_000)
        # ... unless the morsel size shrinks with the session knob
        small = CostModel(catalog, parallelism=8, morsel_rows=1024)
        assert small.dml_parallel_payoff(30_000)

    def test_session_consults_cost_model_for_dml(self):
        catalog = make_random_catalog(seed=8, n=50_000)
        with session_for(catalog, 8) as session:
            model = session._dml_cost_model
            assert model.parallelism == 8
            assert model.morsel_rows == MORSEL_ROWS
            assert model.dml_parallel_payoff(50_000, 1)
        serial = SQLSession(catalog)
        assert not serial._dml_cost_model.dml_parallel_payoff(50_000, 1)
