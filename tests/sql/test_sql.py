"""Tests for the SQL front-end."""

import numpy as np
import pytest

from repro.core import NearlySortedColumn, NearlyUniqueColumn, PatchIndexManager
from repro.sql import SQLSession, parse_statement, tokenize
from repro.sql.lexer import SQLSyntaxError, TokenKind
from repro.sql.parser import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    SetStatement,
    UpdateStatement,
)
from repro.storage import Catalog, Table


@pytest.fixture
def session():
    users = Table.from_arrays(
        "users",
        {
            "uid": np.arange(10, dtype=np.int64),
            "age": np.array([30, 25, 30, 40, 25, 35, 20, 45, 50, 30]),
            "city": np.array(["a", "b", "a", "c", "b", "a", "d", "c", "a", "b"], dtype=object),
        },
    )
    orders = Table.from_arrays(
        "orders",
        {
            "oid": np.arange(6, dtype=np.int64),
            "uid_fk": np.array([0, 0, 1, 3, 3, 9], dtype=np.int64),
            "amount": np.array([10.0, 20.0, 5.0, 7.5, 2.5, 100.0]),
        },
    )
    catalog = Catalog()
    catalog.register(users)
    catalog.register(orders)
    return SQLSession(catalog)


class TestLexer:
    def test_tokenizes_keywords_idents_numbers(self):
        toks = tokenize("SELECT x FROM t WHERE y >= 1.5")
        kinds = [t.kind for t in toks]
        assert kinds[0] is TokenKind.KEYWORD
        assert toks[1].value == "x"
        assert toks[-2].value == "1.5"
        assert kinds[-1] is TokenKind.EOF

    def test_string_literals(self):
        toks = tokenize("SELECT 'hello world'")
        assert toks[1].kind is TokenKind.STRING
        assert toks[1].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_two_char_operators(self):
        toks = tokenize("a <> b <= c >= d")
        ops = [t.value for t in toks if t.kind is TokenKind.OPERATOR]
        assert ops == ["<>", "<=", ">="]


class TestParser:
    def test_simple_select(self):
        stmt = parse_statement("SELECT age FROM users")
        assert isinstance(stmt, SelectStatement)
        assert stmt.tables == ["users"]

    def test_insert(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ["a", "b"]
        assert stmt.rows == [[1, "x"], [2, "y"]]

    def test_insert_arity_mismatch(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 5 WHERE b < 3")
        assert isinstance(stmt, UpdateStatement)
        assert "a" in stmt.assignments

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteStatement)

    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("FROB THE KNOB")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t extra nonsense")

    def test_non_grouped_select_item_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT age, SUM(uid) FROM users GROUP BY city")


class TestSelectExecution:
    def test_select_star(self, session):
        out = session.execute("SELECT * FROM users")
        assert out.num_rows == 10
        assert "age" in out.column_names

    def test_where(self, session):
        out = session.execute("SELECT uid FROM users WHERE age > 35")
        assert sorted(out.column("uid").tolist()) == [3, 7, 8]

    def test_where_string_and_boolean_ops(self, session):
        out = session.execute(
            "SELECT uid FROM users WHERE city = 'a' AND NOT age = 30"
        )
        assert sorted(out.column("uid").tolist()) == [5, 8]

    def test_in_and_between(self, session):
        out = session.execute(
            "SELECT uid FROM users WHERE city IN ('c', 'd') AND age BETWEEN 20 AND 44"
        )
        assert sorted(out.column("uid").tolist()) == [3, 6]

    def test_distinct(self, session):
        out = session.execute("SELECT DISTINCT age FROM users")
        assert sorted(out.column("age").tolist()) == [20, 25, 30, 35, 40, 45, 50]

    def test_order_by_desc_limit(self, session):
        out = session.execute("SELECT uid FROM users ORDER BY age DESC LIMIT 2")
        assert out.column("uid").tolist() == [8, 7]

    def test_group_by_aggregates(self, session):
        out = session.execute(
            "SELECT city, COUNT(*) AS n, AVG(age) AS a FROM users "
            "GROUP BY city ORDER BY city"
        )
        assert out.column("city").tolist() == ["a", "b", "c", "d"]
        assert out.column("n").tolist() == [4, 3, 2, 1]

    def test_join(self, session):
        out = session.execute(
            "SELECT uid, amount FROM users JOIN orders ON uid = uid_fk "
            "WHERE amount > 6 ORDER BY amount"
        )
        assert out.column("amount").tolist() == [7.5, 10.0, 20.0, 100.0]

    def test_computed_projection(self, session):
        out = session.execute("SELECT age * 2 AS dbl FROM users WHERE uid = 0")
        assert out.column("dbl").tolist() == [60]

    def test_case_expression(self, session):
        out = session.execute(
            "SELECT SUM(CASE WHEN age >= 30 THEN 1 ELSE 0 END) AS older "
            "FROM users"
        )
        assert out.column("older").tolist() == [7]

    def test_global_aggregate(self, session):
        out = session.execute("SELECT SUM(amount) AS total FROM orders")
        assert out.column("total")[0] == pytest.approx(145.0)


class TestExplain:
    def test_explain_renders_plan_nodes(self, session):
        text = session.explain(
            "SELECT uid FROM users WHERE age > 35 ORDER BY age DESC LIMIT 2"
        )
        assert "Scan(users" in text
        assert "Sort" in text
        assert "Limit(2)" in text

    def test_explain_join_plan(self, session):
        text = session.explain("SELECT uid, amount FROM users JOIN orders ON uid = uid_fk")
        assert "Join[hash](uid=uid_fk)" in text
        assert "Scan(orders" in text

    def test_explain_without_optimizer_is_raw_plan(self, session):
        assert session.optimizer is None
        text = session.explain("SELECT DISTINCT age FROM users")
        assert "Distinct" in text
        assert "PatchScan" not in text

    def test_explain_rejects_dml_without_optimizer(self, session):
        with pytest.raises(ValueError):
            session.explain("INSERT INTO users (uid, age, city) VALUES (99, 1, 'q')")
        with pytest.raises(ValueError):
            session.explain("UPDATE users SET age = 1")


class TestPredicateRowids:
    def test_no_predicate_returns_all_rowids(self, session):
        table = session.catalog.table("users")
        rowids = session._predicate_rowids(table, None)
        assert rowids.tolist() == list(range(10))

    def test_predicate_selects_matching_rowids(self, session):
        table = session.catalog.table("users")
        stmt = parse_statement("DELETE FROM users WHERE age > 35")
        rowids = session._predicate_rowids(table, stmt.predicate)
        assert rowids.dtype == np.int64
        assert rowids.tolist() == [3, 7, 8]

    def test_predicate_no_match_is_empty(self, session):
        table = session.catalog.table("users")
        stmt = parse_statement("DELETE FROM users WHERE age > 1000")
        assert session._predicate_rowids(table, stmt.predicate).tolist() == []

    def test_rowids_reflect_prior_deletes(self, session):
        # positional rowIDs shift after a delete; the next statement's
        # predicate must be evaluated against the post-delete image
        session.execute("DELETE FROM users WHERE uid = 0")
        table = session.catalog.table("users")
        stmt = parse_statement("DELETE FROM users WHERE age = 25")
        assert session._predicate_rowids(table, stmt.predicate).tolist() == [0, 3]


class TestSetParallelism:
    def test_set_statement_parsed(self):
        stmt = parse_statement("SET parallelism = 4")
        assert isinstance(stmt, SetStatement)
        assert stmt.name == "parallelism"
        assert stmt.value == 4

    def test_set_parallelism_roundtrip(self, session):
        assert session.parallelism == 1
        assert session.execute("SET parallelism = 3") == 3
        assert session.parallelism == 3
        assert session.execute("SET parallelism = 1") == 1
        assert session.parallelism == 1

    def test_constructor_knob_and_identical_results(self):
        users = Table.from_arrays(
            "users",
            {
                "uid": np.arange(50_000, dtype=np.int64),
                "age": np.tile(np.arange(20, 70), 1000).astype(np.int64),
            },
        )
        catalog = Catalog()
        catalog.register(users)
        serial = SQLSession(catalog)
        sql = "SELECT age, COUNT(*) AS n FROM users WHERE age > 30 GROUP BY age ORDER BY age"
        want = serial.execute(sql)
        with SQLSession(catalog, parallelism=3, morsel_rows=4096) as par:
            assert par.parallelism == 3
            out = par.execute(sql)
        for name in want.column_names:
            np.testing.assert_array_equal(out.column(name), want.column(name))

    def test_set_parallelism_midstream(self, session):
        before = session.execute("SELECT uid FROM users ORDER BY uid")
        session.execute("SET parallelism = 2")
        after = session.execute("SELECT uid FROM users ORDER BY uid")
        np.testing.assert_array_equal(before.column("uid"), after.column("uid"))
        session.close()

    def test_invalid_parallelism_rejected(self, session):
        with pytest.raises(ValueError):
            session.execute("SET parallelism = 0")

    def test_unknown_setting_rejected(self, session):
        with pytest.raises(ValueError):
            session.execute("SET frobnication = 7")

    def test_updates_cost_model_parallelism(self):
        n = 3000
        values = np.arange(n, dtype=np.int64)
        t = Table.from_arrays("events", {"eid": np.arange(n), "val": values})
        catalog = Catalog()
        catalog.register(t)
        mgr = PatchIndexManager(catalog)
        mgr.create(t, "val", NearlyUniqueColumn())
        session = SQLSession(catalog, index_manager=mgr)
        session.execute("SET parallelism = 4")
        assert session.optimizer.cost_model.parallelism == 4
        session.execute("SET parallelism = 1")
        assert session.optimizer.cost_model.parallelism == 1


class TestDMLExecution:
    def test_insert_then_select(self, session):
        n = session.execute("INSERT INTO users (uid, age, city) VALUES (10, 33, 'e')")
        assert n == 1
        out = session.execute("SELECT age FROM users WHERE uid = 10")
        assert out.column("age").tolist() == [33]

    def test_insert_missing_columns_rejected(self, session):
        with pytest.raises(ValueError):
            session.execute("INSERT INTO users (uid) VALUES (11)")

    def test_update(self, session):
        n = session.execute("UPDATE users SET age = age + 1 WHERE city = 'a'")
        assert n == 4
        out = session.execute("SELECT age FROM users WHERE uid = 0")
        assert out.column("age").tolist() == [31]

    def test_update_no_match(self, session):
        assert session.execute("UPDATE users SET age = 1 WHERE uid = 999") == 0

    def test_delete(self, session):
        n = session.execute("DELETE FROM users WHERE age >= 45")
        assert n == 2
        assert session.execute("SELECT * FROM users").num_rows == 8

    def test_delete_all(self, session):
        assert session.execute("DELETE FROM orders") == 6


class TestPatchIndexIntegration:
    @pytest.fixture
    def pi_session(self):
        n = 3000
        values = np.arange(n, dtype=np.int64) + n
        values[::100] = 7  # shared value -> patches
        t = Table.from_arrays("events", {"eid": np.arange(n), "val": values})
        catalog = Catalog()
        catalog.register(t)
        mgr = PatchIndexManager(catalog)
        mgr.create(t, "val", NearlyUniqueColumn())
        return SQLSession(catalog, index_manager=mgr, use_cost_model=False)

    def test_distinct_query_uses_patchindex(self, pi_session):
        plan_text = pi_session.explain("SELECT DISTINCT val FROM events")
        assert "PatchScan" in plan_text

    def test_distinct_result_correct(self, pi_session):
        out = pi_session.execute("SELECT DISTINCT val FROM events")
        assert out.num_rows == 3000 - 30 + 1  # 30 rows collapsed into value 7

    def test_sql_update_maintains_index(self, pi_session):
        pi_session.execute("INSERT INTO events (eid, val) VALUES (3000, 7)")
        out = pi_session.execute("SELECT DISTINCT val FROM events")
        assert out.num_rows == 3000 - 30 + 1  # still one group for value 7

    def test_explain_rejects_dml(self, pi_session):
        with pytest.raises(ValueError):
            pi_session.explain("DELETE FROM events")

    def test_sort_query_uses_patchindex(self):
        n = 2000
        vals = np.arange(n, dtype=np.int64)
        vals[[100, 900]] = 0
        t = Table.from_arrays("logs", {"ts": vals, "lid": np.arange(n)})
        catalog = Catalog()
        catalog.register(t)
        mgr = PatchIndexManager(catalog)
        mgr.create(t, "ts", NearlySortedColumn())
        session = SQLSession(catalog, index_manager=mgr, use_cost_model=False)
        plan_text = session.explain("SELECT * FROM logs ORDER BY ts")
        assert "MergeCombine" in plan_text
        out = session.execute("SELECT * FROM logs ORDER BY ts")
        ts = out.column("ts")
        assert bool(np.all(ts[1:] >= ts[:-1]))
