"""DML on partitioned tables: global rowids route to the partitions.

``SQLSession`` UPDATE/DELETE used to address plain tables only — on a
:class:`PartitionedTable` the write step raised.  Matched global rowids
now route through ``PartitionedTable.modify_global`` /
``delete_global``, and the result must be equivalent to (a) the same
statements on an unpartitioned copy of the data and (b) serial
per-partition DML applied by hand, at any session parallelism.
"""

import numpy as np
import pytest

from repro.sql.session import SQLSession
from repro.storage import Catalog, PartitionedTable, Table

PARALLELISMS = [1, 2, 8]
N = 20_000
PARTS = 5


def make_rows(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    # rows arrive sorted on the partition key, so the partitioned
    # table's global (partition-major) order equals the plain table's
    return {
        "pk": np.arange(N, dtype=np.int64),
        "grp": rng.integers(0, 60, N).astype(np.int64),
        "val": rng.random(N),
    }


def plain_catalog(seed: int = 0) -> Catalog:
    catalog = Catalog()
    catalog.register(Table.from_arrays("events", make_rows(seed)))
    return catalog


def partitioned_catalog(seed: int = 0) -> Catalog:
    table = Table.from_arrays("events", make_rows(seed))
    catalog = Catalog()
    catalog.register(PartitionedTable.from_table(table, "pk", PARTS))
    return catalog


STATEMENTS = [
    "UPDATE events SET val = val * 2 WHERE grp < 20",
    "DELETE FROM events WHERE grp % 7 = 3",
    "UPDATE events SET grp = grp + 1, val = val / 2 WHERE val > 0.8",
    "DELETE FROM events WHERE val < 0.03",
]


def assert_images_identical(a, b) -> None:
    assert a.num_rows == b.num_rows
    for name in a.schema.names:
        x, y = a.column(name), b.column(name)
        assert x.dtype == y.dtype, name
        np.testing.assert_array_equal(x, y, err_msg=name)


class TestPartitionedDMLEquivalence:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_matches_plain_table_dml(self, parallelism):
        plain = SQLSession(plain_catalog(seed=1))
        with SQLSession(
            partitioned_catalog(seed=1), parallelism=parallelism, morsel_rows=1024
        ) as parted:
            for sql in STATEMENTS:
                assert plain.execute(sql) == parted.execute(sql), sql
                assert_images_identical(
                    plain.catalog.table("events"), parted.catalog.table("events")
                )

    def test_matches_per_partition_serial_dml(self):
        """Equivalence against serial DML applied partition by partition."""
        session = SQLSession(partitioned_catalog(seed=2))
        reference = partitioned_catalog(seed=2).table("events")
        for sql in STATEMENTS:
            # hand-apply the statement per partition (partition-local
            # rowids, no global routing involved): each partition poses
            # as the "events" table of its own serial session
            for part in reference.partitions:
                original_name = part.name
                part.name = "events"
                try:
                    count = SQLSession(_catalog_of(part)).execute(sql)
                    assert count >= 0
                finally:
                    part.name = original_name
            session.execute(sql)
        assert_images_identical(session.catalog.table("events"), reference)

    def test_delete_spanning_partition_boundaries(self):
        with SQLSession(partitioned_catalog(seed=3), parallelism=2, morsel_rows=512) as s:
            table = s.catalog.table("events")
            before = table.num_rows
            # a key-range predicate straddling several partition bounds
            deleted = s.execute("DELETE FROM events WHERE pk >= 3990 AND pk < 12010")
            assert deleted == 12010 - 3990
            assert table.num_rows == before - deleted
            np.testing.assert_array_equal(
                table.column("pk"),
                np.concatenate([np.arange(3990), np.arange(12010, N)]),
            )

    def test_update_all_rows_without_predicate(self):
        with SQLSession(partitioned_catalog(seed=4), parallelism=2) as s:
            count = s.execute("UPDATE events SET val = 0")
            assert count == N
            assert np.all(s.catalog.table("events").column("val") == 0.0)

    def test_partitioned_rowids(self):
        table = partitioned_catalog(seed=5).table("events")
        rowids = table.rowids()
        assert rowids.dtype == np.int64
        np.testing.assert_array_equal(rowids, np.arange(N))


def _catalog_of(part: Table) -> Catalog:
    catalog = Catalog()
    catalog.register(part)
    return catalog
