"""Statement deadlines, cancellation and overload shedding at the SQL layer.

The sync session enforces ``statement_timeout_ms`` (the ``SET`` knob and
the constructor knob) through a :class:`CancellationToken` installed
around each statement; the async session additionally measures the
deadline from *arrival* (queue wait counts), sheds statements beyond
``max_queued`` with a backoff hint, and turns awaiter-task cancellation
into checkpoint-granular interruption of the running worker thread.
Interrupted writes must be provably un-applied.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.engine.interrupt import (
    CancellationToken,
    QueryCancelledError,
    QueryTimeoutError,
    cancellation_scope,
)
from repro.sql import AsyncSQLSession, SQLSession, SessionOverloadedError
from repro.testing import FaultInjector, FaultRule, inject
from repro.storage import Catalog, Table

TIMEOUT = 60.0


def run_async(coro, timeout: float = TIMEOUT):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_catalog(n=5_000, seed=3):
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(n, dtype=np.int64),
                "grp": rng.integers(0, 20, n).astype(np.int64),
                "val": rng.random(n),
            },
        )
    )
    return catalog


class TestSyncSessionKnob:
    def test_set_statement_sets_and_returns_the_knob(self):
        session = SQLSession(make_catalog())
        assert session.statement_timeout_ms is None
        assert session.execute("SET statement_timeout_ms = 250") == 250
        assert session.statement_timeout_ms == 250

    @pytest.mark.parametrize("off", ["'off'", "'none'", "off", "NONE"])
    def test_set_off_disables(self, off):
        session = SQLSession(make_catalog(), statement_timeout_ms=100)
        assert session.execute(f"SET statement_timeout_ms = {off}") == 0
        assert session.statement_timeout_ms is None

    @pytest.mark.parametrize("value", [0, -1, 1.5])
    def test_set_rejects_bad_values(self, value):
        session = SQLSession(make_catalog())
        with pytest.raises((TypeError, ValueError)):
            session.execute(f"SET statement_timeout_ms = {value}")
        assert session.statement_timeout_ms is None

    @pytest.mark.parametrize("value", [0, -1, 1.5, "4", True])
    def test_constructor_rejects_bad_values(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLSession(make_catalog(), statement_timeout_ms=value)

    def test_setter_roundtrip(self):
        session = SQLSession(make_catalog())
        session.set_statement_timeout_ms(42)
        assert session.statement_timeout_ms == 42
        session.set_statement_timeout_ms(None)
        assert session.statement_timeout_ms is None


class TestSyncSessionInterruption:
    def test_timeout_interrupts_a_parallel_scan(self):
        # the injected sleep outlasts the 50 ms deadline, so the first
        # post-sleep checkpoint (between morsels, on a pool worker)
        # observes the expired token
        session = SQLSession(
            make_catalog(20_000),
            parallelism=2,
            morsel_rows=512,
            statement_timeout_ms=50,
        )
        injector = FaultInjector(
            seed=1,
            rules={"worker.morsel": FaultRule(action="sleep", sleep_s=0.2)},
        )
        with inject(injector):
            with pytest.raises(QueryTimeoutError):
                session.execute("SELECT eid, val FROM events WHERE val >= 0")
        # the session recovers: same statement runs clean afterwards
        rel = session.execute("SELECT COUNT(*) AS n FROM events")
        assert int(rel.column("n")[0]) == 20_000

    def test_caller_scope_takes_precedence(self):
        # a pre-cancelled caller token interrupts even though the
        # session's own knob is off
        session = SQLSession(make_catalog(), parallelism=1, morsel_rows=256)
        token = CancellationToken()
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(QueryCancelledError):
                session.execute("SELECT eid FROM events")

    def test_cancel_from_another_thread(self):
        session = SQLSession(
            make_catalog(20_000), parallelism=2, morsel_rows=512
        )
        token = CancellationToken()
        injector = FaultInjector(
            seed=2,
            rules={"worker.morsel": FaultRule(action="sleep", sleep_s=0.2)},
        )
        canceller = threading.Timer(0.05, token.cancel)
        canceller.start()
        try:
            with inject(injector):
                with cancellation_scope(token):
                    with pytest.raises(QueryCancelledError):
                        session.execute(
                            "SELECT eid, val FROM events WHERE val >= 0"
                        )
        finally:
            canceller.cancel()


class TestWriteAtomicity:
    """An interrupted write leaves the table bit-identical to before."""

    @pytest.mark.parametrize(
        "sql",
        [
            "UPDATE events SET val = 0 WHERE grp < 10",
            "DELETE FROM events WHERE grp < 10",
            "INSERT INTO events (eid, grp, val) VALUES (99999, 1, 0.5)",
        ],
    )
    def test_cancelled_write_is_unapplied(self, sql):
        catalog = make_catalog()
        session = SQLSession(catalog, parallelism=1, morsel_rows=256)
        table = catalog.table("events")
        before = {
            name: np.array(table.column(name), copy=True)
            for name in table.schema.names
        }
        rows_before = table.num_rows
        token = CancellationToken()
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(QueryCancelledError):
                session.execute(sql)
        table = catalog.table("events")
        assert table.num_rows == rows_before
        for name, col in before.items():
            np.testing.assert_array_equal(col, table.column(name))

    def test_completed_write_still_commits(self):
        catalog = make_catalog()
        session = SQLSession(catalog, parallelism=1, morsel_rows=256)
        token = CancellationToken(timeout_ms=3_600_000)  # armed, far away
        with cancellation_scope(token):
            n = session.execute("UPDATE events SET val = 0 WHERE grp = 1")
        assert n > 0
        table = catalog.table("events")
        grp = np.asarray(table.column("grp"))
        val = np.asarray(table.column("val"))
        assert (val[grp == 1] == 0).all()


class TestAsyncKnobs:
    @pytest.mark.parametrize("value", [0, -1, 1.5, "4", True])
    def test_statement_timeout_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            AsyncSQLSession(make_catalog(), statement_timeout_ms=value)

    @pytest.mark.parametrize("value", [0, -1, 1.5, "4", True])
    def test_max_queued_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            AsyncSQLSession(make_catalog(), max_queued=value)

    @pytest.mark.parametrize("value", [0, -1.0, "2", True])
    def test_stall_timeout_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            AsyncSQLSession(make_catalog(), stall_timeout_s=value)

    @pytest.mark.parametrize("value", [0, -1, 1.5, "4", True])
    def test_execute_timeout_override_rejected(self, value):
        async def main():
            async with AsyncSQLSession(make_catalog()) as db:
                with pytest.raises((TypeError, ValueError)):
                    await db.execute("SELECT COUNT(*) AS n FROM events", timeout_ms=value)

        run_async(main())

    def test_knobs_surface(self):
        db = AsyncSQLSession(
            make_catalog(), max_queued=4, statement_timeout_ms=500
        )
        assert db.max_queued == 4
        assert db.statement_timeout_ms == 500
        db.close()

    def test_set_statement_changes_async_default(self):
        async def main():
            async with AsyncSQLSession(make_catalog()) as db:
                assert db.statement_timeout_ms is None
                assert await db.execute("SET statement_timeout_ms = 99") == 99
                assert db.statement_timeout_ms == 99
                assert await db.execute("SET statement_timeout_ms = 'off'") == 0
                assert db.statement_timeout_ms is None

        run_async(main())


class TestAsyncDeadlines:
    def test_slow_statement_times_out(self):
        injector = FaultInjector(
            seed=4,
            rules={"session.dispatch": FaultRule(action="sleep", sleep_s=0.2)},
        )

        async def main():
            async with AsyncSQLSession(make_catalog()) as db:
                with inject(injector):
                    with pytest.raises(QueryTimeoutError):
                        await db.execute(
                            "SELECT COUNT(*) AS n FROM events", timeout_ms=50
                        )
                # slot released; the session keeps serving
                rel = await db.execute("SELECT COUNT(*) AS n FROM events")
                assert int(rel.column("n")[0]) == 5_000
                assert db.inflight == 0 and db.queued == 0

        run_async(main())

    def test_session_default_applies_without_override(self):
        injector = FaultInjector(
            seed=5,
            rules={"session.dispatch": FaultRule(action="sleep", sleep_s=0.2)},
        )

        async def main():
            async with AsyncSQLSession(
                make_catalog(), statement_timeout_ms=50
            ) as db:
                with inject(injector):
                    with pytest.raises(QueryTimeoutError):
                        await db.execute("SELECT COUNT(*) AS n FROM events")

        run_async(main())

    def test_deadline_covers_queue_wait(self):
        injector = FaultInjector(
            seed=6,
            rules={"session.dispatch": FaultRule(action="block", max_fires=1)},
        )

        async def main():
            async with AsyncSQLSession(make_catalog(), max_inflight=1) as db:
                with inject(injector) as inj:
                    blocker = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.inflight < 1:
                        await asyncio.sleep(0.001)
                    with pytest.raises(QueryTimeoutError, match="admission"):
                        await db.execute(
                            "SELECT COUNT(*) AS n FROM events", timeout_ms=50
                        )
                    inj.release("session.dispatch")
                    assert int((await blocker).column("n")[0]) == 5_000

        run_async(main())

    def test_timed_out_write_is_unapplied_and_uncounted(self):
        injector = FaultInjector(
            seed=7,
            rules={"session.dispatch": FaultRule(action="sleep", sleep_s=0.2)},
        )

        async def main():
            catalog = make_catalog()
            before = np.array(catalog.table("events").column("val"), copy=True)
            async with AsyncSQLSession(catalog) as db:
                with inject(injector):
                    with pytest.raises(QueryTimeoutError):
                        await db.execute(
                            "UPDATE events SET val = 0", timeout_ms=50
                        )
                assert db.commit_count == 0
                np.testing.assert_array_equal(
                    before, catalog.table("events").column("val")
                )
                # and a clean retry applies
                await db.execute("UPDATE events SET val = 0 WHERE grp = 1")
                assert db.commit_count == 1

        run_async(main())


class TestAsyncCancellation:
    def test_cancelling_the_task_interrupts_a_running_write(self):
        injector = FaultInjector(
            seed=8,
            rules={"session.dispatch": FaultRule(action="block", max_fires=1)},
        )

        async def main():
            catalog = make_catalog()
            before = np.array(catalog.table("events").column("val"), copy=True)
            async with AsyncSQLSession(catalog) as db:
                with inject(injector) as inj:
                    task = asyncio.create_task(db.execute("UPDATE events SET val = 0"))
                    while db.inflight < 1:
                        await asyncio.sleep(0.001)
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task
                    inj.release("session.dispatch")
                    # wait for the worker thread to unwind and release
                    while db.inflight:
                        await asyncio.sleep(0.001)
                assert db.commit_count == 0
                np.testing.assert_array_equal(
                    before, catalog.table("events").column("val")
                )
                rel = await db.execute("SELECT COUNT(*) AS n FROM events")
                assert int(rel.column("n")[0]) == 5_000

        run_async(main())


class TestOverloadShedding:
    def test_overflow_statement_is_shed_with_backoff_hint(self):
        injector = FaultInjector(
            seed=9,
            rules={"session.dispatch": FaultRule(action="block", max_fires=1)},
        )

        async def main():
            async with AsyncSQLSession(
                make_catalog(), max_inflight=1, max_queued=1
            ) as db:
                with inject(injector) as inj:
                    blocker = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.inflight < 1:
                        await asyncio.sleep(0.001)
                    queued = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.queued < 1:
                        await asyncio.sleep(0.001)
                    with pytest.raises(SessionOverloadedError) as err:
                        await db.execute("SELECT COUNT(*) AS n FROM events")
                    assert err.value.backoff_ms > 0
                    inj.release("session.dispatch")
                    for task in (blocker, queued):
                        assert int((await task).column("n")[0]) == 5_000
                # once drained, statements are admitted again
                rel = await db.execute("SELECT COUNT(*) AS n FROM events")
                assert int(rel.column("n")[0]) == 5_000

        run_async(main())

    def test_set_statements_bypass_shedding(self):
        injector = FaultInjector(
            seed=10,
            rules={"session.dispatch": FaultRule(action="block", max_fires=1)},
        )

        async def main():
            async with AsyncSQLSession(
                make_catalog(), max_inflight=1, max_queued=1
            ) as db:
                with inject(injector) as inj:
                    blocker = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.inflight < 1:
                        await asyncio.sleep(0.001)
                    queued = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.queued < 1:
                        await asyncio.sleep(0.001)
                    # a session knob must not be shed by a full queue
                    assert await db.execute("SET statement_timeout_ms = 123") == 123
                    inj.release("session.dispatch")
                    await blocker
                    await queued

        run_async(main())


class TestShutdownCancelRace:
    def test_queued_statement_cancelled_during_shutdown_keeps_accounting(self):
        """Regression: a task cancel racing ``shutdown``'s queue abort
        used to release a never-granted admission slot.  Whatever wins,
        the statement gets exactly one terminal outcome and the session
        drains cleanly."""
        injector = FaultInjector(
            seed=11,
            rules={"session.dispatch": FaultRule(action="block", max_fires=1)},
        )

        async def main():
            async with AsyncSQLSession(make_catalog(), max_inflight=1) as db:
                with inject(injector) as inj:
                    blocker = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.inflight < 1:
                        await asyncio.sleep(0.001)
                    queued = asyncio.create_task(
                        db.execute("SELECT COUNT(*) AS n FROM events")
                    )
                    while db.queued < 1:
                        await asyncio.sleep(0.001)
                    closer = asyncio.create_task(db.shutdown())
                    queued.cancel()
                    inj.release("session.dispatch")
                    aborted = await closer
                    assert aborted in (0, 1)
                    outcomes = 0
                    try:
                        await queued
                    except (asyncio.CancelledError, Exception):
                        outcomes += 1
                    assert outcomes == 1
                    assert int((await blocker).column("n")[0]) == 5_000
                    assert db.inflight == 0 and db.queued == 0

        run_async(main())
