"""Concurrent correctness of the async session layer.

``AsyncSQLSession`` promises that many concurrent clients on one
session core behave like *some* serial interleaving of their
statements: reads run concurrently but never overlap a write, writes
commit in FIFO admission order, and every read observes exactly the
state produced by a prefix of that write order.  This suite pins that
contract with a linearizability-style prefix-replay check over TPC-H,
plus the scheduling behaviors around it: ``max_inflight``
backpressure, FIFO admission, queued-statement cancellation, the
writer lock, per-query stats, and the bugfix that makes the blocking
``SQLSession`` *reject* multi-threaded use instead of corrupting DML
state.

Every async test runs under ``asyncio.wait_for`` so a deadlocked
writer lock fails fast instead of hanging the suite (CI adds a
pytest-timeout guard on top).
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.sql import AsyncSQLSession, ConcurrentSessionError, SQLSession
from repro.sql.session import KIND_READ, KIND_SESSION, KIND_WRITE, classify_statement
from repro.sql.parser import parse_statement
from repro.storage import Catalog, Table
from repro.workloads import generate_tpch

TIMEOUT = 120.0
#: Tiny morsels force real parallel fan-out on test-sized tables.
MORSEL_ROWS = 1024


def run_async(coro, timeout: float = TIMEOUT):
    """Run a coroutine with a deadlock guard: a stuck admission queue
    or writer lock surfaces as ``TimeoutError``, not a hung job."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


def tpch_catalog(seed: int = 5) -> Catalog:
    catalog = Catalog()
    data = generate_tpch(scale=0.002, seed=seed)
    for table in (data.orders, data.lineitem):
        catalog.register(table)
    return catalog


def events_catalog(n: int = 5_000, seed: int = 3) -> Catalog:
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(n, dtype=np.int64),
                "grp": rng.integers(0, 20, n).astype(np.int64),
                "val": rng.random(n),
            },
        )
    )
    return catalog


def assert_relations_equal(a, b, msg=""):
    assert a.column_names == b.column_names, msg
    for name in a.column_names:
        x, y = a.column(name), b.column(name)
        assert x.dtype == y.dtype, (msg, name)
        np.testing.assert_array_equal(x, y, err_msg=f"{msg} / {name}")


class _Gate:
    """Instruments a session core: statements whose SQL contains a
    marker block on a threading gate, and every start/finish is logged
    (thread-safe) so tests can assert scheduling order."""

    def __init__(self, session, marker="777 = 777"):
        self.marker = marker
        self.gate = threading.Event()
        self.started = []
        self.finished = []
        self.active = 0
        self.max_active = 0
        self._lock = threading.Lock()
        self._orig = session.run_prepared
        session.run_prepared = self._run

    def _run(self, prepared):
        with self._lock:
            self.started.append(prepared.sql)
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        try:
            if self.marker in prepared.sql:
                assert self.gate.wait(TIMEOUT), "gate never opened"
            return self._orig(prepared)
        finally:
            with self._lock:
                self.active -= 1
                self.finished.append(prepared.sql)

    async def wait_started(self, count):
        while len(self.started) < count:
            await asyncio.sleep(0.001)


# ----------------------------------------------------------------------
# statement classification
# ----------------------------------------------------------------------
class TestClassification:
    @pytest.mark.parametrize(
        "sql, kind",
        [
            ("SELECT * FROM t", KIND_READ),
            ("SELECT COUNT(*) AS n FROM t WHERE a > 1", KIND_READ),
            ("INSERT INTO t (a) VALUES (1)", KIND_WRITE),
            ("UPDATE t SET a = 1", KIND_WRITE),
            ("DELETE FROM t WHERE a = 1", KIND_WRITE),
            ("SET parallelism = 2", KIND_SESSION),
        ],
    )
    def test_kinds(self, sql, kind):
        assert classify_statement(parse_statement(sql)) == kind


# ----------------------------------------------------------------------
# linearizability-style prefix replay
# ----------------------------------------------------------------------
class TestLinearizability:
    """N async clients interleave SELECT / UPDATE / DELETE on TPC-H;
    afterwards the write log is replayed serially on a blocking session
    and every read must be bit-identical to the replayed state at the
    write prefix it reported observing."""

    READS = [
        "SELECT COUNT(*) AS n FROM lineitem WHERE l_discount > 0.03",
        "SELECT SUM(l_extendedprice) AS s FROM lineitem WHERE l_suppkey < 50",
        "SELECT l_orderkey, l_extendedprice FROM lineitem "
        "WHERE l_discount > 0.05 ORDER BY l_extendedprice, l_orderkey LIMIT 25",
        "SELECT o_orderkey FROM orders WHERE o_orderdate < 2500 "
        "ORDER BY o_orderkey DESC LIMIT 10",
        "SELECT COUNT(*) AS n FROM orders",
    ]
    WRITES = [
        "UPDATE lineitem SET l_extendedprice = l_extendedprice * 1.01 "
        "WHERE l_discount > 0.04",
        "UPDATE orders SET o_shippriority = 1 WHERE o_orderdate > 2400",
        "DELETE FROM lineitem WHERE l_orderkey % 97 = {k}",
        "UPDATE lineitem SET l_discount = l_discount + 0.001 WHERE l_suppkey % 11 = {k}",
        "DELETE FROM orders WHERE o_orderkey % 131 = {k}",
    ]

    def client_statements(self, rng, n_statements):
        out = []
        for _ in range(n_statements):
            if rng.random() < 0.65:
                out.append(self.READS[rng.integers(len(self.READS))])
            else:
                template = self.WRITES[rng.integers(len(self.WRITES))]
                out.append(template.format(k=int(rng.integers(0, 7))))
        return out

    @pytest.mark.parametrize("clients", [2, 4, 8])
    def test_reads_observe_a_write_prefix(self, clients):
        seed = 40 + clients
        observations = []  # (write_seq, sql, relation)
        write_records = []  # (write_seq, sql)

        async def client(db, statements):
            for sql in statements:
                result, stats = await db.execute(sql, with_stats=True)
                if stats.kind == KIND_READ:
                    observations.append((stats.write_seq, sql, result))
                else:
                    write_records.append((stats.write_seq, sql))

        async def main():
            async with AsyncSQLSession(
                tpch_catalog(seed=seed),
                parallelism=2,
                morsel_rows=MORSEL_ROWS,
                max_inflight=clients,
            ) as db:
                jobs = []
                for i in range(clients):
                    rng = np.random.default_rng(seed * 100 + i)
                    jobs.append(client(db, self.client_statements(rng, 12)))
                await asyncio.gather(*jobs)
                return db.commit_count

        commits = run_async(main())

        # the write log is a gapless 1..N sequence (FIFO commit order)
        seqs = sorted(seq for seq, _ in write_records)
        assert seqs == list(range(1, len(write_records) + 1))
        assert commits == len(write_records)

        # serial replay on a blocking session: apply the writes prefix
        # by prefix, checking every read against the state it claimed
        replay = SQLSession(tpch_catalog(seed=seed))
        by_prefix = {}
        for seq, sql, rel in observations:
            by_prefix.setdefault(seq, []).append((sql, rel))
        ordered_writes = [sql for _, sql in sorted(write_records)]
        for prefix in range(len(ordered_writes) + 1):
            if prefix > 0:
                replay.execute(ordered_writes[prefix - 1])
            for sql, rel in by_prefix.get(prefix, []):
                want = replay.execute(sql)
                assert_relations_equal(
                    rel, want, msg=f"prefix={prefix} clients={clients} {sql}"
                )
        # every observation was matched against some prefix
        assert set(by_prefix) <= set(range(len(ordered_writes) + 1))


# ----------------------------------------------------------------------
# scheduling: backpressure, FIFO, writer lock
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_max_inflight_bounds_concurrency(self):
        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=2)
            gate = _Gate(db._session)
            slow = "SELECT COUNT(*) AS n FROM events WHERE 777 = 777"
            tasks = [asyncio.ensure_future(db.execute(slow)) for _ in range(5)]
            await gate.wait_started(2)
            await asyncio.sleep(0.01)
            # exactly max_inflight started; the rest wait their turn
            assert len(gate.started) == 2
            assert db.inflight == 2
            assert db.queued == 3
            gate.gate.set()
            await asyncio.gather(*tasks)
            assert gate.max_active <= 2
            assert db.inflight == 0 and db.queued == 0
            await db.aclose()

        run_async(main())

    def test_admission_is_fifo(self):
        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=1)
            gate = _Gate(db._session)
            sqls = [
                f"SELECT COUNT(*) AS n FROM events WHERE grp = {i}"
                for i in range(6)
            ]
            gate.gate.set()  # no blocking needed: order is the point
            tasks = [asyncio.ensure_future(db.execute(s)) for s in sqls]
            await asyncio.gather(*tasks)
            assert gate.started == sqls  # strict arrival order
            await db.aclose()

        run_async(main())

    def test_invalid_max_inflight_rejected(self):
        with pytest.raises(ValueError):
            AsyncSQLSession(events_catalog(), max_inflight=0)
        with pytest.raises(TypeError):
            AsyncSQLSession(events_catalog(), max_inflight=2.5)


class TestWriterLock:
    def test_reads_run_concurrently_writes_exclusively(self):
        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=4)
            gate = _Gate(db._session)
            read = "SELECT SUM(val) AS s FROM events WHERE 777 = 777"
            write = "UPDATE events SET val = val * 2 WHERE grp = 1"
            r1 = asyncio.ensure_future(db.execute(read))
            r2 = asyncio.ensure_future(db.execute(read))
            await gate.wait_started(2)  # both reads on threads at once
            w = asyncio.ensure_future(db.execute(write))
            r3 = asyncio.ensure_future(db.execute(read))
            await asyncio.sleep(0.01)
            # the write waits for the running reads; the read behind the
            # write waits behind it (FIFO — no read overtakes a write)
            assert len(gate.started) == 2
            assert db.queued == 2
            gate.gate.set()
            await asyncio.gather(r1, r2, w, r3)
            # write ran alone: third statement to start, after both
            # reads finished, before the trailing read started
            assert gate.started[2] == write
            assert gate.finished[:2] == [read, read]
            assert db.commit_count == 1
            await db.aclose()

        run_async(main())

    def test_writes_serialize_in_order(self):
        async def main():
            async with AsyncSQLSession(events_catalog(), max_inflight=4) as db:
                stats = await asyncio.gather(
                    *(
                        db.execute(
                            f"UPDATE events SET val = val + {i} WHERE grp = {i}",
                            with_stats=True,
                        )
                        for i in range(5)
                    )
                )
                seqs = [s.write_seq for _, s in stats]
                assert sorted(seqs) == [1, 2, 3, 4, 5]
                assert db.commit_count == 5

        run_async(main())

    def test_set_parallelism_is_exclusive_and_applies(self):
        async def main():
            async with AsyncSQLSession(
                events_catalog(), parallelism=2, max_inflight=4
            ) as db:
                assert db.parallelism == 2
                out = await db.execute("SET parallelism = 3")
                assert out == 3
                assert db.parallelism == 3
                # queries still work on the swapped context
                rel = await db.execute("SELECT COUNT(*) AS n FROM events")
                assert rel.column("n").tolist() == [5_000]

        run_async(main())


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancelled_queued_write_never_runs(self):
        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=1)
            gate = _Gate(db._session)
            before = db._session.catalog.table("events").column("val").copy()
            blocker = asyncio.ensure_future(
                db.execute("SELECT COUNT(*) AS n FROM events WHERE 777 = 777")
            )
            await gate.wait_started(1)
            write = asyncio.ensure_future(
                db.execute("UPDATE events SET val = 0 WHERE grp >= 0")
            )
            await asyncio.sleep(0.01)
            assert db.queued == 1
            write.cancel()
            with pytest.raises(asyncio.CancelledError):
                await write
            gate.gate.set()
            await blocker
            await db.drain()
            # the cancelled write never started, never committed
            assert all(sql != "UPDATE events SET val = 0 WHERE grp >= 0"
                       for sql in gate.started)
            assert db.commit_count == 0
            np.testing.assert_array_equal(
                db._session.catalog.table("events").column("val"), before
            )
            # the queue kept flowing after the cancellation
            rel = await db.execute("SELECT COUNT(*) AS n FROM events")
            assert rel.column("n").tolist() == [5_000]
            await db.aclose()

        run_async(main())

    def test_finish_late_with_cancelled_future_still_releases_slot(self):
        """Regression: the cancel can win the race against the worker
        picking the item up, leaving a *cancelled* concurrent future in
        the late-completion path.  Touching ``exception()`` on it
        raises, which used to skip ``_release`` and deadlock the
        session permanently (phantom writer)."""
        from concurrent.futures import Future

        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=1)
            prepared = db._session.prepare("UPDATE events SET val = 0 WHERE grp < 0")
            cancelled = Future()
            assert cancelled.cancel()
            db._inflight = 1
            db._writer_active = True
            db._finish_late(prepared, 0, 0, cancelled)
            assert db.inflight == 0
            assert not db._writer_active
            assert db.commit_count == 0  # the statement never ran
            assert all(s.sql != prepared.sql for s in db.stats())
            # the session still schedules normally afterwards
            rel = await db.execute("SELECT COUNT(*) AS n FROM events")
            assert rel.column("n").tolist() == [5_000]
            await db.aclose()

        run_async(main())

    def test_statement_planned_after_admission_not_at_arrival(self):
        """Regression: plans must snapshot index state *after* the
        statement holds its slot — a read queued behind a write that is
        planned at arrival could bake in pre-write patch counts (e.g.
        zero-branch pruning) and miss the write's rows."""

        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=2)
            gate = _Gate(db._session)
            planned_at = []
            orig = db._session.prepare_parsed

            def spy(stmt, sql=""):
                planned_at.append((sql, db.commit_count))
                return orig(stmt, sql)

            db._session.prepare_parsed = spy
            write = asyncio.ensure_future(
                db.execute("UPDATE events SET val = val WHERE 777 = 777")
            )
            await gate.wait_started(1)
            read = asyncio.ensure_future(
                db.execute("SELECT COUNT(*) AS n FROM events")
            )
            await asyncio.sleep(0.01)
            gate.gate.set()
            await asyncio.gather(write, read)
            # the queued read was planned only once the write committed
            assert dict(planned_at)["SELECT COUNT(*) AS n FROM events"] == 1
            await db.aclose()

        run_async(main())

    def test_cancel_inflight_statement_unblocks_caller_and_keeps_slot(self):
        async def main():
            db = AsyncSQLSession(events_catalog(), max_inflight=1)
            gate = _Gate(db._session)
            task = asyncio.ensure_future(
                db.execute("SELECT SUM(val) AS s FROM events WHERE 777 = 777")
            )
            await gate.wait_started(1)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # the thread is still executing: the admission slot must
            # stay held (max_inflight keeps meaning "running threads")
            assert db.inflight == 1
            gate.gate.set()
            await db.drain()
            assert db.inflight == 0
            await db.aclose()

        run_async(main())


# ----------------------------------------------------------------------
# stats + introspection
# ----------------------------------------------------------------------
class TestIntrospection:
    def test_per_query_stats_recorded(self):
        async def main():
            async with AsyncSQLSession(events_catalog(), max_inflight=2) as db:
                await db.execute("SELECT COUNT(*) AS n FROM events")
                await db.execute("UPDATE events SET val = val WHERE grp = 0")
                stats = db.stats()
                assert [s.kind for s in stats] == [KIND_READ, KIND_WRITE]
                assert all(s.queued_ns >= 0 and s.exec_ns > 0 for s in stats)
                assert stats[0].cost_hint > 0  # planner costed the SELECT
                assert stats[0].write_seq == 0 and stats[1].write_seq == 1

        run_async(main())

    def test_explain_surfaces_cost_hint_queue_state_and_timings(self):
        async def main():
            async with AsyncSQLSession(events_catalog(), max_inflight=2) as db:
                sql = "SELECT grp, SUM(val) AS s FROM events GROUP BY grp ORDER BY grp"
                await db.execute(sql)
                text = db.explain(sql)
                assert "admission cost hint:" in text
                assert "admission: max_inflight=2" in text
                assert "last run: queued" in text
                assert "rows~" in text and "cost~" in text
                profile = db.profile()
                assert "queued ms" in profile and sql[:20] in profile

        run_async(main())

    def test_execute_after_aclose_rejected(self):
        async def main():
            db = AsyncSQLSession(events_catalog())
            await db.aclose()
            with pytest.raises(RuntimeError):
                await db.execute("SELECT COUNT(*) AS n FROM events")

        run_async(main())


# ----------------------------------------------------------------------
# the blocking-session bugfix (regression)
# ----------------------------------------------------------------------
class TestBlockingSessionReentrancy:
    def test_second_thread_is_rejected_with_clear_error(self):
        session = SQLSession(events_catalog())
        gate = _Gate(session)
        errors = []
        done = threading.Event()

        def holder():
            session.execute("SELECT COUNT(*) AS n FROM events WHERE 777 = 777")
            done.set()

        t = threading.Thread(target=holder)
        t.start()
        assert _wait_until(lambda: gate.started, 10), "holder never started"
        try:
            session.execute("SELECT COUNT(*) AS n FROM events")
        except ConcurrentSessionError as exc:
            errors.append(str(exc))
        gate.gate.set()
        t.join(timeout=10)
        assert done.is_set()
        assert errors, "concurrent execute was silently allowed"
        assert "AsyncSQLSession" in errors[0]  # the error points at the fix
        # the session recovers once the first statement finished
        rel = session.execute("SELECT COUNT(*) AS n FROM events")
        assert rel.column("n").tolist() == [5_000]

    def test_dml_from_second_thread_cannot_interleave(self):
        """The historical corruption scenario: a write sneaking into an
        in-flight write's window is now an error, not silent state
        damage."""
        session = SQLSession(events_catalog())
        gate = _Gate(session)
        t = threading.Thread(
            target=session.execute,
            args=("UPDATE events SET val = val * 2 WHERE grp < 5 AND 777 = 777",),
        )
        t.start()
        assert _wait_until(lambda: gate.started, 10)
        with pytest.raises(ConcurrentSessionError):
            session.execute("DELETE FROM events WHERE grp = 1")
        gate.gate.set()
        t.join(timeout=10)
        assert not t.is_alive()


def _wait_until(predicate, timeout):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return bool(predicate())


# ----------------------------------------------------------------------
# pool handle sharing between the async layer and the session core
# ----------------------------------------------------------------------
class TestSharedContext:
    def test_session_adopts_shared_context_and_never_closes_it(self):
        from repro.engine.parallel import ExecutionContext

        ctx = ExecutionContext(parallelism=2, morsel_rows=MORSEL_ROWS)
        session = SQLSession(events_catalog(), context=ctx)
        assert session.parallelism == 2
        assert session.context is ctx
        session.close()
        # the shared context survives the session: its owner decides
        assert ctx.submit_external(lambda: 41).result(timeout=10) == 41
        ctx.close()

    def test_set_parallelism_detaches_but_keeps_shared_context_open(self):
        from repro.engine.parallel import ExecutionContext

        ctx = ExecutionContext(parallelism=2, morsel_rows=MORSEL_ROWS)
        session = SQLSession(events_catalog(), context=ctx)
        assert session.execute("SET parallelism = 3") == 3
        assert session.context is not ctx
        # the shared context is still usable by its owner
        assert ctx.submit_external(lambda: 1).result(timeout=10) == 1
        session.close()
        ctx.close()

    def test_async_session_multiplexes_one_context(self):
        async def main():
            db = AsyncSQLSession(events_catalog(), parallelism=2, max_inflight=3)
            assert db._session.context is db._context
            # SET swaps the session's morsel context; dispatch keeps
            # using the async session's own (still-open) lane
            await db.execute("SET parallelism = 1")
            rel = await db.execute("SELECT COUNT(*) AS n FROM events")
            assert rel.column("n").tolist() == [5_000]
            await db.aclose()

        run_async(main())
