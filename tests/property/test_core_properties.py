"""Property-based tests: constraint invariants under arbitrary updates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BITMAP_DESIGN,
    IDENTIFIER_DESIGN,
    NearlySortedColumn,
    NearlyUniqueColumn,
    PatchIndexManager,
    discover_nsc_patches,
    discover_nuc_patches,
    longest_sorted_subsequence,
)
from repro.storage import Table

values_lists = st.lists(st.integers(min_value=-50, max_value=50), min_size=0, max_size=120)


@given(values_lists)
@settings(max_examples=60, deadline=None)
def test_nuc_discovery_invariants(values):
    arr = np.array(values, dtype=np.int64)
    patches = discover_nuc_patches(arr)
    mask = np.zeros(len(arr), dtype=bool)
    mask[patches] = True
    kept = arr[~mask]
    # kept values unique and disjoint from patch values
    assert len(np.unique(kept)) == len(kept)
    assert not np.isin(kept, arr[mask]).any()
    # minimality: every kept value occurs exactly once globally
    uniq, counts = np.unique(arr, return_counts=True)
    assert len(kept) == int((counts == 1).sum())


@given(values_lists, st.booleans())
@settings(max_examples=60, deadline=None)
def test_nsc_discovery_invariants(values, ascending):
    arr = np.array(values, dtype=np.int64)
    patches, last = discover_nsc_patches(arr, ascending)
    mask = np.zeros(len(arr), dtype=bool)
    mask[patches] = True
    kept = arr[~mask]
    if len(kept) > 1:
        diffs = kept[1:] - kept[:-1]
        assert np.all(diffs >= 0) if ascending else np.all(diffs <= 0)
    if len(kept):
        assert last == kept[-1]


@given(values_lists, st.booleans())
@settings(max_examples=60, deadline=None)
def test_lis_is_maximal_among_dp(values, ascending):
    arr = np.array(values, dtype=np.int64)
    idx = longest_sorted_subsequence(arr, ascending)
    # DP reference for the optimal length
    best = 0
    lengths = []
    for i in range(len(arr)):
        cur = 1
        for j in range(i):
            ok = arr[j] <= arr[i] if ascending else arr[j] >= arr[i]
            if ok and lengths[j] + 1 > cur:
                cur = lengths[j] + 1
        lengths.append(cur)
        best = max(best, cur)
    assert len(idx) == best


class UpdateOp:
    def __init__(self, kind, a, values):
        self.kind = kind
        self.a = a
        self.values = values

    def __repr__(self):
        return f"UpdateOp({self.kind}, {self.a}, {self.values})"


@st.composite
def update_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        kind = draw(st.sampled_from(["insert", "delete", "modify"]))
        a = draw(st.integers(min_value=0, max_value=10**6))
        vals = draw(st.lists(st.integers(min_value=-30, max_value=130), min_size=1, max_size=6))
        ops.append(UpdateOp(kind, a, vals))
    return ops


def apply_update(table, op):
    n = table.num_rows
    if op.kind == "insert":
        k0 = int(table.column("k").max()) + 1 if n else 0
        table.insert({
            "k": np.arange(k0, k0 + len(op.values), dtype=np.int64),
            "v": np.array(op.values, dtype=np.int64),
        })
    elif n == 0:
        return
    elif op.kind == "delete":
        count = min(len(op.values), n)
        rng = np.random.default_rng(op.a)
        table.delete(np.sort(rng.choice(n, size=count, replace=False)))
    else:
        count = min(len(op.values), n)
        rng = np.random.default_rng(op.a)
        rowids = np.sort(rng.choice(n, size=count, replace=False))
        table.modify(rowids, {"v": np.array(op.values[:count], dtype=np.int64)})


@given(values_lists, update_sequences(), st.sampled_from([BITMAP_DESIGN, IDENTIFIER_DESIGN]))
@settings(max_examples=40, deadline=None)
def test_nuc_index_survives_arbitrary_updates(values, ops, design):
    table = Table.from_arrays(
        "t",
        {"k": np.arange(len(values)), "v": np.array(values, dtype=np.int64)},
        minmax_block_size=16,
    )
    mgr = PatchIndexManager()
    handle = mgr.create(table, "v", NearlyUniqueColumn(), design=design)
    for op in ops:
        apply_update(table, op)
        assert handle.verify(), f"invariant broken after {op!r}"
    assert handle.num_rows == table.num_rows


@given(values_lists, update_sequences(), st.sampled_from([BITMAP_DESIGN, IDENTIFIER_DESIGN]))
@settings(max_examples=40, deadline=None)
def test_nsc_index_survives_arbitrary_updates(values, ops, design):
    table = Table.from_arrays(
        "t",
        {"k": np.arange(len(values)), "v": np.array(values, dtype=np.int64)},
        minmax_block_size=16,
    )
    mgr = PatchIndexManager()
    handle = mgr.create(table, "v", NearlySortedColumn(), design=design)
    for op in ops:
        apply_update(table, op)
        assert handle.verify(), f"invariant broken after {op!r}"
    assert handle.num_rows == table.num_rows
