"""Property-based tests: bitmaps against a list-of-bools model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import PlainBitmap, ShardedBitmap
from repro.bitmap import kernels

SHARD = 128


class BitOp:
    """One random mutation applied to both model and implementation."""

    def __init__(self, kind, payload):
        self.kind = kind
        self.payload = payload

    def __repr__(self):
        return f"BitOp({self.kind}, {self.payload})"


@st.composite
def op_sequences(draw):
    length = draw(st.integers(min_value=1, max_value=400))
    n_ops = draw(st.integers(min_value=0, max_value=40))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["set", "unset", "delete", "append", "bulk", "condense"]))
        payload = draw(st.integers(min_value=0, max_value=10**6))
        extra = draw(st.lists(st.integers(min_value=0, max_value=10**6), max_size=8))
        ops.append(BitOp(kind, (payload, extra)))
    return length, ops


def apply_ops(bitmap, model, ops):
    for op in ops:
        n = len(model)
        value, extra = op.payload
        if op.kind == "append":
            bit = bool(value % 2)
            bitmap.append(bit)
            model.append(bit)
        elif n == 0:
            continue
        elif op.kind == "set":
            bitmap.set(value % n)
            model[value % n] = True
        elif op.kind == "unset":
            bitmap.unset(value % n)
            model[value % n] = False
        elif op.kind == "delete":
            bitmap.delete(value % n)
            del model[value % n]
        elif op.kind == "bulk":
            positions = sorted({v % n for v in [value] + extra})
            bitmap.bulk_delete(positions)
            for p in reversed(positions):
                del model[p]
        elif op.kind == "condense" and isinstance(bitmap, ShardedBitmap):
            bitmap.condense()


@given(op_sequences())
@settings(max_examples=60, deadline=None)
def test_sharded_bitmap_matches_model(case):
    length, ops = case
    bitmap = ShardedBitmap(length, shard_bits=SHARD)
    model = [False] * length
    apply_ops(bitmap, model, ops)
    assert len(bitmap) == len(model)
    np.testing.assert_array_equal(bitmap.to_bool_array(), np.array(model, dtype=bool))


@given(op_sequences())
@settings(max_examples=30, deadline=None)
def test_plain_bitmap_matches_model(case):
    length, ops = case
    bitmap = PlainBitmap(length)
    model = [False] * length
    apply_ops(bitmap, model, ops)
    assert len(bitmap) == len(model)
    np.testing.assert_array_equal(bitmap.to_bool_array(), np.array(model, dtype=bool))


@given(
    st.lists(st.booleans(), min_size=1, max_size=500),
    st.integers(min_value=0, max_value=499),
)
@settings(max_examples=60, deadline=None)
def test_shift_kernels_agree_and_match_reference(bits, pos):
    bits = np.array(bits, dtype=bool)
    pos = pos % len(bits)
    expected = bits.copy()
    expected[pos:-1] = bits[pos + 1 :]
    expected[-1] = False
    for kernel in (kernels.shift_down_vectorized, kernels.shift_down_scalar):
        words = kernels.bool_to_words(bits)
        kernel(words, pos, len(bits))
        np.testing.assert_array_equal(kernels.words_to_bool(words, len(bits)), expected)


@given(st.lists(st.booleans(), max_size=300))
@settings(max_examples=40, deadline=None)
def test_pack_unpack_roundtrip(bits):
    arr = np.array(bits, dtype=bool)
    words = kernels.bool_to_words(arr)
    np.testing.assert_array_equal(kernels.words_to_bool(words, len(arr)), arr)
    assert kernels.popcount_words(words) == int(arr.sum())


@given(
    st.integers(min_value=1, max_value=2000),
    st.sets(st.integers(min_value=0, max_value=1999), max_size=100),
)
@settings(max_examples=40, deadline=None)
def test_condense_preserves_content(length, raw_deletes):
    deletes = sorted(d for d in raw_deletes if d < length)
    rng = np.random.default_rng(0)
    bits = rng.random(length) < 0.5
    bm = ShardedBitmap.from_bool_array(bits, shard_bits=SHARD)
    if deletes:
        bm.bulk_delete(deletes)
    before = bm.to_bool_array()
    bm.condense()
    assert bm.lost_bits() == 0
    np.testing.assert_array_equal(bm.to_bool_array(), before)
