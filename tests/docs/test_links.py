"""No dead relative links in docs/*.md or README.md.

Inline markdown links are collected with a small regex; every
non-external target must resolve to an existing file (or directory)
relative to the document that references it.  External links
(http/https/mailto) are out of scope — CI should not depend on the
network — as are pure in-page anchors.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

DOCUMENTS = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

#: inline links, excluding images; markdown reference-style links are
#: not used in this repo.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

EXTERNAL = ("http://", "https://", "mailto:")


def relative_links(doc: pathlib.Path):
    links = []
    for target in LINK.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        links.append(target.split("#", 1)[0])
    return links


def test_documents_exist():
    assert DOCUMENTS, "no documents collected"
    names = {d.name for d in DOCUMENTS}
    assert {"README.md", "architecture.md", "protocol.md"} <= names


@pytest.mark.parametrize("doc", DOCUMENTS, ids=lambda d: d.name)
def test_no_dead_relative_links(doc):
    dead = []
    for target in relative_links(doc):
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"{doc.relative_to(REPO)} has dead links: {dead}"


def test_readme_links_the_server_docs():
    """The front-door docs are discoverable from the README."""
    text = (REPO / "README.md").read_text(encoding="utf-8")
    for needle in (
        "docs/architecture.md",
        "docs/protocol.md",
        "examples/server_quickstart.py",
    ):
        assert needle in text, f"README does not reference {needle}"
