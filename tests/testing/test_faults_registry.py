"""The fault-point registry must match reality.

``repro.testing.faults.KNOWN_POINTS`` documents every injection point in
the codebase; this test greps the source tree for actual
``faults.fire(...)`` / ``faults.mutate(...)`` call sites and asserts set
equality, so a new point cannot be added (or an old one removed)
without updating the registry and its docs.
"""

import os
import re

import repro
import repro.testing.faults as faults_module
from repro.testing import KNOWN_POINTS

CALL_SITE = re.compile(r"""faults\.(?:fire|mutate)\(\s*["']([^"']+)["']""")


def _source_points():
    root = os.path.dirname(repro.__file__)
    points = set()
    for dirpath, _, filenames in os.walk(root):
        for name in filenames:
            if not name.endswith(".py"):
                continue
            with open(os.path.join(dirpath, name), encoding="utf-8") as fh:
                points.update(CALL_SITE.findall(fh.read()))
    return points


def test_registry_matches_call_sites():
    assert _source_points() == set(KNOWN_POINTS)


def test_registry_enumerates_all_seven_points():
    assert len(KNOWN_POINTS) == 7
    assert len(set(KNOWN_POINTS)) == 7


def test_every_point_is_documented():
    doc = faults_module.__doc__
    for point in KNOWN_POINTS:
        assert f"``{point}``" in doc, f"{point} missing from faults docstring"
