"""Optional second reference engine: DuckDB (skipped when absent).

The differential harness is engine-agnostic on the reference side — it
only needs DB-API ``execute``/``executemany``/``fetchall`` — so the
same corpus can cross-check against DuckDB when the ``differential``
extra is installed (``pip install -e '.[differential]'``).  The
NULL-probe section is excluded: its manifest documents *SQLite's*
NULL placement (NULL-first ordering), which DuckDB does not share, and
a manifest excuse that holds for one reference but not the other would
make strict-xfail ambiguous.
"""

import pytest

duckdb = pytest.importorskip("duckdb")

from repro.testing import (  # noqa: E402  (importorskip must run first)
    DifferentialPair,
    build_reference_catalog,
    default_corpus,
    run_corpus,
)


def test_select_corpus_against_duckdb():
    conn = duckdb.connect(":memory:")
    try:
        pair = DifferentialPair(build_reference_catalog(seed=0), conn=conn)
        corpus = [
            q
            for q in default_corpus(seed=7)
            if q.kind == "select" and not q.qid.startswith("null/")
        ]
        report = run_corpus(pair, corpus)
        detail = "; ".join(
            [str(m) for m in report.mismatches]
            + [str(u) for u in report.unsupported]
            + [f"stale xfail: {q}" for q in report.xpassed]
        )
        assert report.ok, f"{report.summary()} -- {detail}"
        pair.session.close()
    finally:
        conn.close()
