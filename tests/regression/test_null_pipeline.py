"""NULL must survive the full pipeline, not just the parser.

Satellite contract: a NULL written through INSERT/UPDATE round-trips
through WAL replay and the async session, IS [NOT] NULL sees it, and a
column type with no NULL representation refuses it with a typed error
instead of storing garbage.
"""

import asyncio

import numpy as np
import pytest

from repro.sql import AsyncSQLSession, NullStorageError, SQLSession
from repro.storage import Catalog, Table


def make_catalog():
    cat = Catalog()
    cat.register(
        Table.from_arrays(
            "people",
            {
                "pid": np.arange(6, dtype=np.int64),
                "pname": np.array([f"p{i}" for i in range(6)], dtype=object),
                "score": np.arange(6, dtype=np.float64),
            },
        )
    )
    return cat


class TestStorage:
    def test_insert_null_string_and_float(self):
        s = SQLSession(make_catalog())
        s.execute("INSERT INTO people (pid, pname, score) VALUES (6, NULL, NULL)")
        rel = s.execute("SELECT pid FROM people WHERE pname IS NULL")
        assert rel.column("pid").tolist() == [6]
        rel = s.execute("SELECT pid FROM people WHERE score IS NULL")
        assert rel.column("pid").tolist() == [6]

    def test_update_to_null(self):
        s = SQLSession(make_catalog())
        assert s.execute("UPDATE people SET pname = NULL WHERE pid < 2") == 2
        rel = s.execute("SELECT pid FROM people WHERE pname IS NULL ORDER BY pid")
        assert rel.column("pid").tolist() == [0, 1]

    def test_null_excluded_from_comparisons(self):
        s = SQLSession(make_catalog())
        s.execute("UPDATE people SET pname = NULL WHERE pid = 0")
        # neither = nor <> matches a NULL cell (SQL comparison semantics)
        eq = s.execute("SELECT pid FROM people WHERE pname = 'p0'")
        ne = s.execute("SELECT pid FROM people WHERE pname <> 'p0' ORDER BY pid")
        assert eq.num_rows == 0
        assert ne.column("pid").tolist() == [1, 2, 3, 4, 5]

    def test_int_column_refuses_null_on_insert(self):
        s = SQLSession(make_catalog())
        with pytest.raises(NullStorageError, match="INT64"):
            s.execute("INSERT INTO people (pid, pname, score) VALUES (NULL, 'x', 1.0)")

    def test_int_column_refuses_null_on_update(self):
        s = SQLSession(make_catalog())
        with pytest.raises(NullStorageError):
            s.execute("UPDATE people SET pid = NULL WHERE pid = 0")

    def test_refused_insert_leaves_table_unchanged(self):
        s = SQLSession(make_catalog())
        with pytest.raises(NullStorageError):
            s.execute("INSERT INTO people (pid, pname, score) VALUES (NULL, 'x', 1.0)")
        assert s.execute("SELECT COUNT(*) AS n FROM people").column("n").tolist() == [6]


class TestWalReplay:
    def test_nulls_survive_crash_recovery(self, tmp_path):
        s = SQLSession(make_catalog(), data_dir=str(tmp_path), wal_sync="off")
        s.execute("INSERT INTO people (pid, pname, score) VALUES (6, NULL, NULL)")
        s.execute("UPDATE people SET pname = NULL WHERE pid = 1")
        del s  # crash: no close, no checkpoint — reopen replays the WAL
        s2 = SQLSession(make_catalog(), data_dir=str(tmp_path), wal_sync="off")
        rel = s2.execute("SELECT pid FROM people WHERE pname IS NULL ORDER BY pid")
        assert rel.column("pid").tolist() == [1, 6]
        rel = s2.execute("SELECT pid FROM people WHERE score IS NULL")
        assert rel.column("pid").tolist() == [6]
        s2.close()

    def test_nulls_survive_checkpoint_then_replay(self, tmp_path):
        s = SQLSession(
            make_catalog(), data_dir=str(tmp_path), wal_sync="off",
            checkpoint_interval=1,
        )
        s.execute("UPDATE people SET pname = NULL WHERE pid = 2")
        s.execute("INSERT INTO people (pid, pname, score) VALUES (7, NULL, 3.5)")
        del s
        s2 = SQLSession(make_catalog(), data_dir=str(tmp_path), wal_sync="off")
        rel = s2.execute("SELECT pid FROM people WHERE pname IS NULL ORDER BY pid")
        assert rel.column("pid").tolist() == [2, 7]
        s2.close()


class TestAsyncSession:
    def test_null_through_async_session(self):
        async def scenario():
            async with AsyncSQLSession(make_catalog()) as db:
                await db.execute(
                    "INSERT INTO people (pid, pname, score) VALUES (6, NULL, NULL)"
                )
                await db.execute("UPDATE people SET pname = NULL WHERE pid = 0")
                rel = await db.execute(
                    "SELECT pid FROM people WHERE pname IS NULL ORDER BY pid"
                )
                return rel.column("pid").tolist()

        assert asyncio.run(asyncio.wait_for(scenario(), 60.0)) == [0, 6]

    def test_null_storage_error_propagates_async(self):
        async def scenario():
            async with AsyncSQLSession(make_catalog()) as db:
                with pytest.raises(NullStorageError):
                    await db.execute("UPDATE people SET pid = NULL WHERE pid = 0")

        asyncio.run(asyncio.wait_for(scenario(), 60.0))
