"""Regression pins for the three parser/binder bugs this PR fixed.

1. ``_parse_literal`` rejected NULL outright and negated strings blew
   up with a bare TypeError deep in expression evaluation;
2. ``_parse_column_ref`` silently dropped the table qualifier, so
   ``a.x`` resolved against *any* table and ambiguity went undetected;
3. LIMIT accepted negative/float values (slicing garbage) and OFFSET
   was unsupported.
"""

import numpy as np
import pytest

from repro.sql import (
    AmbiguousColumnError,
    BindError,
    QualifiedRefUnsupportedError,
    SQLSession,
    UnknownColumnError,
    UnknownQualifierError,
    parse_statement,
)
from repro.sql.lexer import SQLSyntaxError
from repro.storage import Catalog, Table


def make_catalog():
    cat = Catalog()
    cat.register(
        Table.from_arrays(
            "t",
            {
                "a": np.arange(10, dtype=np.int64),
                "b": (np.arange(10) * 1.5).astype(np.float64),
                "name": np.array([f"n{i}" for i in range(10)], dtype=object),
            },
        )
    )
    cat.register(
        Table.from_arrays(
            "u",
            {
                "a": np.arange(5, dtype=np.int64),
                "c": np.arange(5, dtype=np.int64) * 10,
            },
        )
    )
    return cat


@pytest.fixture()
def session():
    return SQLSession(make_catalog())


class TestNullLiteral:
    def test_null_parses_in_predicate(self):
        stmt = parse_statement("SELECT a FROM t WHERE name = NULL")
        assert stmt is not None

    def test_null_comparison_selects_nothing(self, session):
        assert session.execute("SELECT a FROM t WHERE name = NULL").num_rows == 0

    def test_negated_string_is_a_clear_syntax_error(self):
        with pytest.raises(SQLSyntaxError, match="cannot negate string literal 'abc'"):
            parse_statement("SELECT a FROM t WHERE name = -'abc'")

    def test_negated_null_is_a_clear_syntax_error(self):
        with pytest.raises(SQLSyntaxError, match="cannot negate NULL"):
            parse_statement("SELECT a FROM t WHERE a = -NULL")

    def test_negated_numbers_still_work(self, session):
        rel = session.execute("SELECT a FROM t WHERE a > -1 ORDER BY a LIMIT 2")
        assert rel.column("a").tolist() == [0, 1]


class TestQualifiedRefs:
    def test_alias_qualifier_resolves(self, session):
        rel = session.execute("SELECT x.a FROM t x WHERE x.a < 3 ORDER BY x.a")
        assert rel.column("a").tolist() == [0, 1, 2]

    def test_table_name_qualifier_resolves(self, session):
        rel = session.execute("SELECT t.a FROM t WHERE t.a = 4")
        assert rel.column("a").tolist() == [4]

    def test_unknown_qualifier_raises_typed_error(self, session):
        with pytest.raises(UnknownQualifierError):
            session.execute("SELECT z.a FROM t WHERE z.a = 1")

    def test_alias_hides_table_name(self, session):
        # with an alias bound, the bare table name is no longer a
        # valid qualifier (SQLite behavior)
        with pytest.raises(UnknownQualifierError):
            session.execute("SELECT t.a FROM t x WHERE t.a = 1")

    def test_ambiguous_bare_column_raises(self, session):
        with pytest.raises(AmbiguousColumnError):
            session.execute("SELECT a FROM t JOIN u ON b = c WHERE a = 1")

    def test_unknown_column_raises_and_stays_a_keyerror(self, session):
        with pytest.raises(UnknownColumnError) as info:
            session.execute("SELECT nope FROM t")
        assert isinstance(info.value, KeyError)  # pre-binder compatibility
        assert isinstance(info.value, BindError)

    def test_qualified_ref_to_duplicated_column_is_explicit(self, session):
        # both t and u hold column a; the engine resolves by bare name,
        # so a qualified pick between them is a typed refusal rather
        # than a silently wrong answer
        with pytest.raises(QualifiedRefUnsupportedError):
            session.execute("SELECT t.a FROM t JOIN u ON b = c")

    def test_errors_surface_at_prepare_time(self, session):
        with pytest.raises(UnknownColumnError):
            session.prepare("SELECT nope FROM t")


class TestLimitOffset:
    def test_negative_limit_rejected(self):
        with pytest.raises(SQLSyntaxError, match="non-negative"):
            parse_statement("SELECT a FROM t LIMIT -1")

    def test_float_limit_rejected(self):
        with pytest.raises(SQLSyntaxError, match="non-negative"):
            parse_statement("SELECT a FROM t LIMIT 1.5")

    def test_negative_offset_rejected(self):
        with pytest.raises(SQLSyntaxError, match="non-negative"):
            parse_statement("SELECT a FROM t LIMIT 5 OFFSET -2")

    def test_limit_offset_slices(self, session):
        rel = session.execute("SELECT a FROM t ORDER BY a LIMIT 3 OFFSET 2")
        assert rel.column("a").tolist() == [2, 3, 4]

    def test_sqlite_comma_form(self, session):
        # LIMIT <offset>, <count>
        rel = session.execute("SELECT a FROM t ORDER BY a LIMIT 2, 3")
        assert rel.column("a").tolist() == [2, 3, 4]

    def test_offset_past_end_is_empty(self, session):
        assert session.execute("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 99").num_rows == 0

    def test_limit_zero(self, session):
        assert session.execute("SELECT a FROM t ORDER BY a LIMIT 0").num_rows == 0

    def test_offset_with_descending_topn_shape(self, session):
        # the TopN rewrite must not swallow the skipped prefix
        rel = session.execute("SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1")
        assert rel.column("a").tolist() == [8, 7, 6]
