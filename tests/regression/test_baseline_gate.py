"""The baseline diff gate: noise-tolerant, and never self-rewriting.

Pins the :mod:`repro.bench.baselines` protocol with synthetic timings:
the gate trips only past the slowdown factor, ignores sub-floor noise
and brand-new queries, and a regressing run cannot refresh its own
baseline even with ``BENCH_WRITE`` set (gate-before-write).
"""

import pytest

from repro.bench.baselines import (
    BaselineGateError,
    diff_against_baselines,
    gate_and_maybe_write,
    load_baselines,
    save_baselines,
)


@pytest.fixture()
def clean_env(monkeypatch):
    for var in ("BENCH_WRITE", "BENCH_BASELINE_RESET", "BENCH_BASELINE_FACTOR"):
        monkeypatch.delenv(var, raising=False)
    return monkeypatch


def test_round_trip(tmp_path, clean_env):
    path = str(tmp_path / "baselines.json")
    save_baselines({"q1": 0.01, "q2": 0.02}, path)
    assert load_baselines(path) == {"q1": 0.01, "q2": 0.02}


def test_missing_file_is_empty(tmp_path):
    assert load_baselines(str(tmp_path / "absent.json")) == {}


def test_within_factor_passes(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.010}, path)
    diffs = gate_and_maybe_write({"q": 0.045}, path)  # 4.5x < 5x
    assert [d.regressed for d in diffs] == [False]


def test_past_factor_fails(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.010}, path)
    with pytest.raises(BaselineGateError, match="q:"):
        gate_and_maybe_write({"q": 0.060}, path)  # 6x > 5x


def test_factor_env_override(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.010}, path)
    clean_env.setenv("BENCH_BASELINE_FACTOR", "10")
    gate_and_maybe_write({"q": 0.060}, path)  # 6x < 10x: passes


def test_sub_floor_noise_ignored(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.0002}, path)
    # 10x slowdown, but both sides are micro-timings below the floor
    diffs = gate_and_maybe_write({"q": 0.002}, path)
    assert not diffs[0].regressed


def test_new_query_has_no_gate(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"old": 0.01}, path)
    diffs = gate_and_maybe_write({"old": 0.01, "fresh": 5.0}, path)
    by_qid = {d.qid: d for d in diffs}
    assert by_qid["fresh"].ratio is None
    assert not by_qid["fresh"].regressed


def test_gate_runs_before_write(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.010}, path)
    clean_env.setenv("BENCH_WRITE", "1")
    with pytest.raises(BaselineGateError):
        gate_and_maybe_write({"q": 0.100}, path)
    # the regressing timing must NOT have replaced the baseline
    assert load_baselines(path) == {"q": 0.010}


def test_reset_accepts_regression(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.010}, path)
    clean_env.setenv("BENCH_BASELINE_RESET", "1")
    gate_and_maybe_write({"q": 0.100}, path)
    assert load_baselines(path) == {"q": 0.1}


def test_write_merges_with_stored(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"kept": 0.01}, path)
    clean_env.setenv("BENCH_WRITE", "1")
    gate_and_maybe_write({"fresh": 0.02}, path)
    assert load_baselines(path) == {"kept": 0.01, "fresh": 0.02}


def test_no_write_without_env(tmp_path, clean_env):
    path = str(tmp_path / "b.json")
    save_baselines({"q": 0.010}, path)
    gate_and_maybe_write({"q": 0.011}, path)
    assert load_baselines(path) == {"q": 0.010}


def test_diffs_sorted_by_qid(clean_env):
    diffs = diff_against_baselines({"b": 1.0, "a": 2.0}, {})
    assert [d.qid for d in diffs] == ["a", "b"]
