"""The cross-engine differential corpus must run with zero surprises.

Tentpole contract: every query in the versioned corpus either agrees
with the sqlite3 reference row-for-row (under the canonical comparator)
or sits in :data:`XFAIL_MANIFEST` with a written excuse — and a manifest
entry that stops diverging is itself a failure (stale excuse).
"""

import math

import pytest

from repro.testing import (
    XFAIL_MANIFEST,
    DifferentialPair,
    Query,
    ResultMismatch,
    build_reference_catalog,
    default_corpus,
    run_corpus,
)
from repro.testing.differential import canonical_rows, compare_rows

CORPUS = default_corpus(seed=7)


@pytest.fixture(scope="module")
def fresh_pair():
    with DifferentialPair(build_reference_catalog(seed=0)) as pair:
        yield pair


class TestCorpusShape:
    def test_at_least_forty_selects_plus_dml(self):
        selects = [q for q in CORPUS if q.kind == "select"]
        dml = [q for q in CORPUS if q.kind == "dml"]
        assert len(selects) >= 40
        assert len(dml) >= 5

    def test_query_ids_unique(self):
        ids = [q.qid for q in CORPUS]
        assert len(set(ids)) == len(ids)

    def test_every_manifest_entry_is_exercised(self):
        ids = {q.qid for q in CORPUS}
        missing = set(XFAIL_MANIFEST) - ids
        assert not missing, f"manifest excuses nothing in the corpus: {missing}"

    def test_every_manifest_entry_has_a_note(self):
        for qid, why in XFAIL_MANIFEST.items():
            assert why.strip(), f"empty excuse for {qid}"

    def test_corpus_is_deterministic(self):
        again = default_corpus(seed=7)
        assert [(q.qid, q.sql) for q in CORPUS] == [(q.qid, q.sql) for q in again]


class TestFullRun:
    def test_zero_unexplained_divergences(self):
        # a dedicated pair: the DML section mutates its catalog
        with DifferentialPair(build_reference_catalog(seed=0)) as pair:
            report = run_corpus(pair, CORPUS)
        detail = "; ".join(
            [str(m) for m in report.mismatches]
            + [str(u) for u in report.unsupported]
            + [f"stale xfail: {q}" for q in report.xpassed]
        )
        assert report.ok, f"{report.summary()} -- {detail}"
        assert len(report.passed) + len(report.xfailed) == len(CORPUS)
        # the manifest is exact: exactly the excused queries diverged
        assert set(report.xfailed) == set(XFAIL_MANIFEST)


class TestPerQuery:
    """Each non-excused SELECT individually (readable failure per query)."""

    SELECTS = [
        q for q in CORPUS if q.kind == "select" and q.qid not in XFAIL_MANIFEST
    ]

    @pytest.mark.parametrize("query", SELECTS, ids=lambda q: q.qid)
    def test_select_agrees_with_reference(self, fresh_pair, query):
        fresh_pair.check(query)

    @pytest.mark.parametrize(
        "qid", sorted(q for q in XFAIL_MANIFEST if q.startswith("null/"))
    )
    def test_excused_probes_still_diverge(self, fresh_pair, qid):
        query = next(q for q in CORPUS if q.qid == qid)
        with pytest.raises((ResultMismatch, AssertionError)):
            fresh_pair.check(query)


class TestComparator:
    def test_nan_and_none_unify(self):
        rows = canonical_rows([(float("nan"), "x"), (None, "y")])
        assert rows == [(None, "x"), (None, "y")]

    def test_float_tolerance_absorbs_rounding(self):
        compare_rows(
            "t", "sql", [(0.1 + 0.2,)], [(0.3,)]
        )  # no ResultMismatch despite 0.30000000000000004

    def test_real_divergence_raises(self):
        with pytest.raises(ResultMismatch):
            compare_rows("t", "sql", [(1, "a")], [(2, "a")])

    def test_row_count_divergence_raises(self):
        with pytest.raises(ResultMismatch):
            compare_rows("t", "sql", [(1,)], [(1,), (2,)])

    def test_order_insensitive(self):
        compare_rows("t", "sql", [(2,), (1,)], [(1,), (2,)])

    def test_null_sorts_deterministically(self):
        rows = canonical_rows([(1.5,), (None,), ("z",), (math.inf,)])
        assert rows[0] == (None,)


class TestDml:
    def test_apply_catches_wrong_rows_touched(self):
        with DifferentialPair(build_reference_catalog(seed=0)) as pair:
            # mutate only our side: content comparison must now fail
            pair.session.execute("UPDATE events SET amount = amount + 1 WHERE eid = 3")
            with pytest.raises(ResultMismatch):
                pair.check_table("probe", "events")
