"""Parallel execution must be bit-identical to serial on the corpus.

Satellite contract: the differential corpus' SELECT section and its
seeded DML mix produce byte-for-byte the same results at parallelism
1/2/8 as serially — including the descending-sort tie order whose
divergence the cross-engine harness originally surfaced.
"""

import numpy as np
import pytest

from repro.sql import SQLSession
from repro.storage import Catalog, Table
from repro.testing import build_reference_catalog, default_corpus
from repro.testing.differential import random_dml_corpus

PARALLELISMS = [1, 2, 8]

CORPUS_SELECTS = [q for q in default_corpus(seed=7) if q.kind == "select"]


@pytest.fixture(scope="module")
def catalog():
    return build_reference_catalog(seed=0)


def assert_relations_identical(want, got, label):
    assert want.column_names == got.column_names, label
    for name in want.column_names:
        a, b = want.column(name), got.column(name)
        assert a.dtype == b.dtype, (label, name)
        if a.dtype.kind == "f":
            # NaN-aware exact equality (NaN is our FLOAT64 NULL)
            both_nan = np.isnan(a) & np.isnan(b)
            assert np.array_equal(a[~both_nan], b[~both_nan]), (label, name)
        else:
            np.testing.assert_array_equal(a, b, err_msg=f"{label} / {name}")


class TestSelectIdentity:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_corpus_selects_bit_identical(self, catalog, parallelism):
        serial = SQLSession(catalog)
        with SQLSession(
            catalog, parallelism=parallelism, morsel_rows=256
        ) as parallel:
            for query in CORPUS_SELECTS:
                want = serial.execute(query.sql)
                got = parallel.execute(query.sql)
                assert_relations_identical(want, got, query.qid)


class TestDmlIdentity:
    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_dml_mix_bit_identical(self, parallelism):
        mix = random_dml_corpus(seed=11, rounds=8)
        serial_cat = build_reference_catalog(seed=0)
        parallel_cat = build_reference_catalog(seed=0)
        serial = SQLSession(serial_cat)
        with SQLSession(
            parallel_cat, parallelism=parallelism, morsel_rows=64
        ) as parallel:
            for query in mix:
                want_count = serial.execute(query.sql)
                got_count = parallel.execute(query.sql)
                assert int(want_count) == int(got_count), query.qid
            a = serial_cat.table("events")
            b = parallel_cat.table("events")
            assert a.num_rows == b.num_rows
            for name in a.schema.names:
                np.testing.assert_array_equal(
                    a.column(name), b.column(name), err_msg=name
                )


class TestDescendingTieOrder:
    """The bug the harness caught: ``ORDER BY k DESC, name`` must keep
    the secondary key ASCENDING inside equal primary keys — the old
    whole-permutation reversal flipped it."""

    def _catalog(self):
        cat = Catalog()
        cat.register(
            Table.from_arrays(
                "scores",
                {
                    "sid": np.arange(8, dtype=np.int64),
                    "grp": np.array([1, 1, 1, 2, 2, 2, 2, 1], dtype=np.int64),
                    "name": np.array(list("dacbdacb"), dtype=object),
                },
            )
        )
        return cat

    def test_secondary_key_stays_ascending_within_desc_ties(self):
        s = SQLSession(self._catalog())
        rel = s.execute("SELECT grp, name FROM scores ORDER BY grp DESC, name")
        assert rel.column("grp").tolist() == [2, 2, 2, 2, 1, 1, 1, 1]
        assert rel.column("name").tolist() == ["a", "b", "c", "d", "a", "b", "c", "d"]

    def test_full_row_ties_keep_original_order_descending(self):
        s = SQLSession(self._catalog())
        rel = s.execute("SELECT sid FROM scores WHERE grp = 2 ORDER BY grp DESC")
        # all four rows tie on the sort key: original row order survives
        assert rel.column("sid").tolist() == [3, 4, 5, 6]

    @pytest.mark.parametrize("parallelism", PARALLELISMS)
    def test_desc_tie_order_identical_in_parallel(self, parallelism):
        serial = SQLSession(self._catalog())
        with SQLSession(
            self._catalog(), parallelism=parallelism, morsel_rows=2
        ) as parallel:
            sql = "SELECT sid, grp, name FROM scores ORDER BY grp DESC, name"
            assert_relations_identical(
                serial.execute(sql), parallel.execute(sql), "desc-tie"
            )
