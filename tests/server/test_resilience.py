"""Fault tolerance over the wire: deadlines, cancel, shedding, retry.

Exercises the PR 8 resilience surface end-to-end through real sockets:
per-statement ``timeout_ms`` overrides, cancelling a *running*
statement, overload shedding with ``backoff_ms`` hints, the
shutdown-vs-cancel terminal-frame guarantee, client retry/reconnect,
and corrupted-frame detection under the fault injection harness.
"""

import asyncio
import socket
import threading

import pytest

from repro.server import (
    AsyncSQLClient,
    ConnectionClosedError,
    RetryPolicy,
    ServerError,
    SQLClient,
    SQLServer,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.testing import FaultInjector, FaultRule, inject

from _harness import N_EVENTS, make_catalog, run_async

from test_server_lifecycle import gate_session


async def wait_until(predicate, timeout=5.0, interval=0.01):
    """Poll ``predicate`` on the event loop until true (or fail)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(interval)


class TestWireDeadlines:
    def test_timeout_ms_interrupts_a_running_statement(self):
        inj = FaultInjector(
            seed=2,
            rules={"session.dispatch": FaultRule(action="sleep", sleep_s=0.2)},
        )

        async def main():
            async with SQLServer(make_catalog(1)) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    with inject(inj):
                        with pytest.raises(ServerError) as err:
                            await cli.execute(
                                "SELECT COUNT(*) AS n FROM events", timeout_ms=50
                            )
                    assert err.value.code == "query-timeout"
                    assert err.value.retryable
                    # the connection and session stay healthy
                    r = await cli.execute("SELECT COUNT(*) AS n FROM events")
                    assert r.scalar() == N_EVENTS

        run_async(main())

    def test_timed_out_write_leaves_no_trace(self):
        inj = FaultInjector(
            seed=4,
            rules={"session.dispatch": FaultRule(action="sleep", sleep_s=0.2)},
        )

        async def main():
            async with SQLServer(make_catalog(2)) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    with inject(inj):
                        with pytest.raises(ServerError) as err:
                            await cli.execute(
                                "UPDATE events SET val = 0.0 WHERE grp = 1",
                                timeout_ms=50,
                            )
                    assert err.value.code == "query-timeout"
                    assert srv.session.commit_count == 0
                    # retrying the same statement commits exactly once
                    w = await cli.execute("UPDATE events SET val = 0.0 WHERE grp = 1")
                    assert w.stats["write_seq"] == 1
                    assert srv.session.commit_count == 1

        run_async(main())

    def test_mistyped_timeout_ms_is_a_fatal_protocol_error(self):
        async def main():
            async with SQLServer(make_catalog(1)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                try:
                    await write_frame(
                        writer, {"type": "hello", "version": PROTOCOL_VERSION}
                    )
                    hello_ok = await read_frame(reader)
                    assert hello_ok["type"] == "hello_ok"
                    await write_frame(
                        writer,
                        {
                            "type": "query",
                            "id": 1,
                            "sql": "SELECT COUNT(*) AS n FROM events",
                            "timeout_ms": "250",
                        },
                    )
                    frame = await read_frame(reader)
                    assert frame["type"] == "error"
                    assert frame["code"] == "protocol"
                    assert "timeout_ms" in frame["error"]
                    # fatal: the server hangs up after the error frame
                    assert await read_frame(reader) is None
                finally:
                    writer.close()
                    await writer.wait_closed()

        run_async(main())

    @pytest.mark.parametrize("bad", [0, -5])
    def test_out_of_range_timeout_ms_is_a_statement_error(self, bad):
        async def main():
            async with SQLServer(make_catalog(1)) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    with pytest.raises(ServerError) as err:
                        await cli.execute(
                            "SELECT COUNT(*) AS n FROM events", timeout_ms=bad
                        )
                    assert err.value.code == "sql"
                    assert "timeout_ms" in str(err.value)
                    # statement-level: the connection survives
                    r = await cli.execute("SELECT COUNT(*) AS n FROM events")
                    assert r.scalar() == N_EVENTS

        run_async(main())


class TestWireCancellation:
    def test_cancel_interrupts_a_running_statement(self):
        inj = FaultInjector(
            seed=13,
            rules={"session.dispatch": FaultRule(action="block", max_fires=1)},
        )

        async def main():
            async with SQLServer(make_catalog(3)) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    try:
                        with inject(inj):
                            sid = await cli.submit(
                                "UPDATE events SET val = val + 1.0 WHERE grp < 5"
                            )
                            # the statement is provably *running*: its
                            # dispatch thread sits inside the blocking
                            # fault point
                            await wait_until(
                                lambda: inj.fired.get("session.dispatch", 0) == 1
                            )
                            await cli.cancel(sid)
                            await asyncio.sleep(0.05)
                            inj.release_all()
                            with pytest.raises(ServerError) as err:
                                await cli.wait(sid)
                        assert err.value.code == "query-cancelled"
                        assert not err.value.retryable
                        assert srv.session.commit_count == 0
                        # the interrupted write never landed
                        r = await cli.execute(
                            "SELECT COUNT(*) AS n FROM events WHERE val > 1.0"
                        )
                        assert r.scalar() == 0
                    finally:
                        inj.release_all()

        run_async(main())

    def test_shutdown_racing_cancel_sends_one_terminal_frame_each(self):
        async def main():
            srv = SQLServer(make_catalog(5), session_max_inflight=1)
            await srv.start()
            gate = gate_session(srv.session)
            reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
            try:
                await write_frame(
                    writer, {"type": "hello", "version": PROTOCOL_VERSION}
                )
                assert (await read_frame(reader))["type"] == "hello_ok"
                sql = "SELECT COUNT(*) AS n FROM events"
                await write_frame(writer, {"type": "query", "id": 1, "sql": sql})
                await write_frame(writer, {"type": "query", "id": 2, "sql": sql})
                # id 1 is running (gated), id 2 queued behind the
                # session admission bound
                await wait_until(lambda: srv.session.inflight == 1)
                await write_frame(writer, {"type": "cancel", "target": 2})
                await asyncio.sleep(0.05)
                close_task = asyncio.create_task(srv.aclose())
                await asyncio.sleep(0.05)
                gate.set()
                frames = []
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    frames.append(frame)
                await close_task
                terminal = {}
                for frame in frames:
                    if "id" in frame:
                        terminal.setdefault(frame["id"], []).append(frame)
                assert set(terminal) == {1, 2}
                assert all(len(v) == 1 for v in terminal.values()), (
                    "duplicate terminal frames: %r" % terminal
                )
                assert terminal[1][0]["type"] == "result"
                assert terminal[2][0]["type"] == "error"
                assert terminal[2][0]["code"] == "query-cancelled"
            finally:
                gate.set()
                writer.close()
                await writer.wait_closed()
                await srv.aclose()

        run_async(main())


class TestOverloadShedding:
    def test_overloaded_frame_carries_backoff_hint(self):
        async def main():
            async with SQLServer(
                make_catalog(7), session_max_inflight=1, session_max_queued=1
            ) as srv:
                gate = gate_session(srv.session)
                try:
                    async with await AsyncSQLClient.connect(
                        "127.0.0.1", srv.port
                    ) as cli:
                        sql = "SELECT COUNT(*) AS n FROM events"
                        s1 = await cli.submit(sql)
                        s2 = await cli.submit(sql)
                        await wait_until(
                            lambda: srv.session.inflight == 1
                            and srv.session.queued == 1
                        )
                        with pytest.raises(ServerError) as err:
                            await cli.execute(sql)
                        assert err.value.code == "overloaded"
                        assert err.value.retryable
                        assert isinstance(err.value.backoff_ms, int)
                        assert err.value.backoff_ms > 0
                        gate.set()
                        assert (await cli.wait(s1)).scalar() == N_EVENTS
                        assert (await cli.wait(s2)).scalar() == N_EVENTS
                finally:
                    gate.set()

        run_async(main())

    def test_sync_client_retries_through_overload(self):
        async def main():
            async with SQLServer(
                make_catalog(9), session_max_inflight=1, session_max_queued=1
            ) as srv:
                gate = gate_session(srv.session)
                try:
                    async with await AsyncSQLClient.connect(
                        "127.0.0.1", srv.port
                    ) as occupier:
                        s1 = await occupier.submit("SELECT COUNT(*) AS n FROM events")
                        s2 = await occupier.submit("SELECT COUNT(*) AS n FROM metrics")
                        await wait_until(
                            lambda: srv.session.inflight == 1
                            and srv.session.queued == 1
                        )

                        def blocking(port):
                            policy = RetryPolicy(
                                max_attempts=8,
                                base_backoff_ms=50.0,
                                jitter=0.0,
                                seed=1,
                            )
                            with SQLClient("127.0.0.1", port, retry=policy) as cli:
                                return cli.execute(
                                    "SELECT COUNT(*) AS n FROM events"
                                ).scalar()

                        fut = asyncio.create_task(asyncio.to_thread(blocking, srv.port))
                        await asyncio.sleep(0.2)  # guarantee >=1 shed attempt
                        gate.set()
                        assert await fut == N_EVENTS
                        await occupier.wait(s1)
                        await occupier.wait(s2)
                finally:
                    gate.set()

        run_async(main())

    def test_retry_budget_exhausts_with_the_typed_error(self):
        async def main():
            async with SQLServer(
                make_catalog(11), session_max_inflight=1, session_max_queued=1
            ) as srv:
                gate = gate_session(srv.session)
                try:
                    async with await AsyncSQLClient.connect(
                        "127.0.0.1", srv.port
                    ) as occupier:
                        s1 = await occupier.submit("SELECT COUNT(*) AS n FROM events")
                        s2 = await occupier.submit("SELECT COUNT(*) AS n FROM metrics")
                        await wait_until(
                            lambda: srv.session.inflight == 1
                            and srv.session.queued == 1
                        )

                        def blocking(port):
                            policy = RetryPolicy(
                                max_attempts=2, base_backoff_ms=10.0, jitter=0.0
                            )
                            with SQLClient("127.0.0.1", port, retry=policy) as cli:
                                cli.execute("SELECT COUNT(*) AS n FROM events")

                        with pytest.raises(ServerError) as err:
                            await asyncio.to_thread(blocking, srv.port)
                        assert err.value.code == "overloaded"
                        assert err.value.retryable
                        gate.set()
                        await occupier.wait(s1)
                        await occupier.wait(s2)
                finally:
                    gate.set()

        run_async(main())


class TestReconnect:
    def test_sync_client_reconnects_after_a_dropped_connection(self):
        async def main():
            async with SQLServer(make_catalog(1)) as srv:

                def blocking(port):
                    policy = RetryPolicy(max_attempts=3, base_backoff_ms=10.0, seed=5)
                    with SQLClient("127.0.0.1", port, retry=policy) as cli:
                        first = cli.execute("SELECT COUNT(*) AS n FROM events").scalar()
                        # sever the transport out from under the client
                        cli._sock.shutdown(socket.SHUT_RDWR)
                        cli._sock.close()
                        second = cli.execute(
                            "SELECT COUNT(*) AS n FROM events"
                        ).scalar()
                        return first, second

                first, second = await asyncio.to_thread(blocking, srv.port)
                assert first == second == N_EVENTS

        run_async(main())

    def test_async_client_redials_after_a_dropped_connection(self):
        async def main():
            async with SQLServer(make_catalog(2)) as srv:
                cli = await AsyncSQLClient.connect(
                    "127.0.0.1",
                    srv.port,
                    retry=RetryPolicy(max_attempts=3, base_backoff_ms=10.0, seed=6),
                )
                try:
                    r1 = await cli.execute("SELECT COUNT(*) AS n FROM events")
                    cli._writer.close()
                    await cli._writer.wait_closed()
                    await wait_until(lambda: not cli._connected)
                    r2 = await cli.execute("SELECT COUNT(*) AS n FROM events")
                    assert r1.scalar() == r2.scalar() == N_EVENTS
                finally:
                    await cli.aclose()

        run_async(main())

    def test_connection_loss_does_not_resend_a_submitted_write(self):
        """A write that may have reached the server is never resent.

        The client raises instead of retrying; server-side the severed
        statement is cancelled and unwinds without committing, so the
        write lands zero times — never twice.
        """

        async def main():
            async with SQLServer(make_catalog(3)) as srv:
                gate = gate_session(srv.session)
                try:

                    def blocking(port):
                        policy = RetryPolicy(max_attempts=4, base_backoff_ms=10.0)
                        cli = SQLClient("127.0.0.1", port, timeout=5.0, retry=policy)
                        try:
                            # the write is submitted, then the transport
                            # dies while awaiting the reply
                            sock = cli._sock
                            killer = threading.Timer(
                                0.2, lambda: sock.shutdown(socket.SHUT_RDWR)
                            )
                            killer.start()
                            try:
                                cli.execute("DELETE FROM events WHERE eid < 10")
                            finally:
                                killer.cancel()
                        finally:
                            cli._closed = True
                            cli._drop_connection()

                    with pytest.raises((ConnectionError, OSError)):
                        await asyncio.to_thread(blocking, srv.port)
                finally:
                    gate.set()
                # disconnect cancelled the gated statement: it unwound
                # before the atomic mutation, so nothing committed
                await wait_until(lambda: srv.session.inflight == 0)
                assert srv.session.commit_count == 0
                assert srv.session.catalog.table("events").num_rows == N_EVENTS

        run_async(main())


class TestCorruptedFrames:
    def test_client_detects_a_corrupted_server_frame(self):
        # seed 0 deterministically lands the single bit flip inside the
        # result frame's JSON body, producing a malformed payload
        inj = FaultInjector(
            seed=0, rules={"server.frame": FaultRule(action="corrupt", max_fires=1)}
        )

        async def main():
            async with SQLServer(make_catalog(1)) as srv:

                def blocking(port):
                    cli = SQLClient("127.0.0.1", port, timeout=5.0)
                    try:
                        with inject(inj):
                            with pytest.raises(ProtocolError):
                                cli.execute("SELECT COUNT(*) AS n FROM events")
                    finally:
                        cli._closed = True
                        cli._drop_connection()

                await asyncio.to_thread(blocking, srv.port)
                assert inj.fired.get("server.frame", 0) == 1

        run_async(main())
