"""Seeded fuzz against the server: garbage frames, rude disconnects.

Two layers of abuse, both with a well-behaved connection alongside to
prove isolation:

* **frame fuzz** — malformed bodies (bad JSON, wrong types, missing
  fields), raw garbage bytes, and oversized payloads.  Every abusive
  connection must be answered with a typed fatal error (or simply
  closed); the server and its other connections keep working.
* **lifecycle fuzz** — mixed SQL workloads where clients vanish
  mid-query without a ``close`` frame.  Afterwards the committed write
  log (server-side stats — they record statements whose client
  disconnected too) is replayed serially on an identical catalog and
  the final state must be bit-identical: rude disconnects may abort
  *queued* statements but never lose, duplicate, or tear a commit.
"""

import asyncio

import numpy as np
import pytest

from _harness import assert_replay_matches, make_catalog, run_async
from repro.server import AsyncSQLClient, SQLServer
from repro.server.protocol import (
    HEADER,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
    write_frame,
)

SEEDS = [101, 202]

READS = [
    "SELECT COUNT(*) AS n FROM events WHERE grp < {k}",
    "SELECT SUM(val) AS s FROM events WHERE grp % 3 = {m3}",
    "SELECT grp, COUNT(*) AS n FROM events GROUP BY grp ORDER BY grp",
    "SELECT eid, val FROM events WHERE val > 0.9 ORDER BY val DESC, eid LIMIT 20",
    "SELECT COUNT(*) AS n FROM metrics WHERE bucket = {b}",
    "SELECT bucket, SUM(v) AS s FROM metrics GROUP BY bucket ORDER BY bucket",
]
WRITES = [
    "UPDATE events SET val = val * 1.02 WHERE grp = {k}",
    "UPDATE events SET grp = grp + 1 WHERE val < 0.02 AND grp < 25",
    "DELETE FROM events WHERE eid % 211 = {m7}",
    "INSERT INTO events (eid, grp, val) VALUES ({ins}, {k}, 0.5)",
    "UPDATE metrics SET v = v / 1.01 WHERE bucket = {b}",
    "DELETE FROM metrics WHERE mid % 307 = {m7}",
]


def statement(rng: np.random.Generator, client_id: int, step: int) -> str:
    params = {
        "k": int(rng.integers(0, 30)),
        "m3": int(rng.integers(0, 3)),
        "m7": int(rng.integers(0, 7)),
        "b": int(rng.integers(0, 12)),
        # unique eid per (client, step): inserts never collide
        "ins": 1_000_000 + client_id * 1_000 + step,
    }
    pool = READS if rng.random() < 0.6 else WRITES
    return pool[rng.integers(len(pool))].format(**params)


GARBAGE_BODIES = [
    b"\x00\x01\x02 not json",
    b"{truncated",
    b"[]",
    b"null",
    b'"hello"',
    b"{}",
    b'{"type": 7}',
    b'{"type": "no-such-type"}',
    b'{"type": "query", "id": 1}',  # missing sql
    b'{"type": "query", "id": "one", "sql": "SELECT 1"}',  # mistyped id
    b'{"type": "query", "id": true, "sql": "SELECT 1"}',  # bool id
    b'{"type": "hello", "version": "1"}',  # hello again, mistyped
    b'{"type": "result", "id": 1, "row_count": 0}',  # server-only type
]


async def expect_fatal_close(reader, writer):
    """The server must answer with a fatal error (or just close)."""
    saw_error = False
    while True:
        try:
            frame = await read_frame(reader)
        except ConnectionError:
            break
        if frame is None:
            break
        if frame.get("type") == "error":
            saw_error = True
            assert frame["code"] in {"protocol", "too-large", "auth"}
    writer.close()
    return saw_error


async def handshake(reader, writer):
    await write_frame(writer, {"type": "hello", "version": PROTOCOL_VERSION})
    frame = await read_frame(reader)
    assert frame["type"] == "hello_ok"


class TestFrameFuzz:
    @pytest.mark.parametrize("body", GARBAGE_BODIES, ids=range(len(GARBAGE_BODIES)))
    def test_garbage_after_handshake_gets_fatal_error(self, body):
        async def main():
            async with SQLServer(make_catalog(31)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await handshake(reader, writer)
                writer.write(HEADER.pack(len(body)) + body)
                await writer.drain()
                assert await expect_fatal_close(reader, writer)
                # the server still accepts and serves a healthy client
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    assert (await cli.execute("SELECT COUNT(*) AS n FROM events")).rows

        run_async(main())

    @pytest.mark.parametrize("body", GARBAGE_BODIES[:6], ids=range(6))
    def test_garbage_instead_of_hello(self, body):
        async def main():
            async with SQLServer(make_catalog(31)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                writer.write(HEADER.pack(len(body)) + body)
                await writer.drain()
                await expect_fatal_close(reader, writer)
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    assert (await cli.execute("SELECT COUNT(*) AS n FROM metrics")).rows

        run_async(main())

    def test_oversized_declared_length_rejected(self):
        async def main():
            async with SQLServer(make_catalog(31), max_frame_bytes=4096) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await handshake(reader, writer)
                writer.write(HEADER.pack(1 << 30))  # 1 GiB claim, no body
                await writer.drain()
                saw = await expect_fatal_close(reader, writer)
                assert saw  # typed too-large error, not a buffering attempt

        run_async(main())

    def test_oversized_actual_payload_rejected(self):
        async def main():
            async with SQLServer(make_catalog(31), max_frame_bytes=4096) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await handshake(reader, writer)
                sql = "SELECT 1 -- " + "x" * 8192
                body = encode_frame({"type": "query", "id": 1, "sql": sql})[HEADER.size:]
                writer.write(HEADER.pack(len(body)) + body)
                await writer.drain()
                assert await expect_fatal_close(reader, writer)

        run_async(main())

    def test_random_byte_stream(self):
        """Pure noise on the socket (headers included) never kills the
        acceptor."""

        async def main():
            rng = np.random.default_rng(7)
            async with SQLServer(make_catalog(31)) as srv:
                for _ in range(8):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", srv.port
                    )
                    noise = rng.integers(0, 256, int(rng.integers(1, 64))).astype(
                        np.uint8
                    )
                    writer.write(noise.tobytes())
                    await writer.drain()
                    await expect_fatal_close(reader, writer)
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    assert (await cli.execute("SELECT COUNT(*) AS n FROM events")).rows

        run_async(main())

    def test_half_frame_then_disconnect(self):
        async def main():
            async with SQLServer(make_catalog(31)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await handshake(reader, writer)
                frame = encode_frame({"type": "query", "id": 1, "sql": "SELECT 1"})
                writer.write(frame[: len(frame) // 2])
                await writer.drain()
                writer.close()  # EOF mid-body
                await writer.wait_closed()
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    assert (await cli.execute("SELECT COUNT(*) AS n FROM events")).rows

        run_async(main())


class TestDisconnectFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mixed_clients_with_rude_disconnects_replay_clean(self, seed):
        async def rude_client(port, rng, client_id):
            """Submit a few statements, then vanish without closing."""
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await handshake(reader, writer)
            n = int(rng.integers(1, 5))
            for i in range(n):
                await write_frame(
                    writer,
                    {
                        "type": "query",
                        "id": i + 1,
                        "sql": statement(rng, client_id, i),
                    },
                )
            # read back a random prefix of the replies, then hang up
            # abruptly — possibly with statements still queued/in flight
            for _ in range(int(rng.integers(0, n + 1))):
                frame = await read_frame(reader)
                if frame is None:
                    break
            writer.close()
            await writer.wait_closed()

        async def polite_client(port, rng, client_id):
            results = []
            async with await AsyncSQLClient.connect("127.0.0.1", port) as cli:
                for i in range(12):
                    try:
                        results.append(await cli.execute(statement(rng, client_id, i)))
                    except Exception as exc:  # noqa: BLE001 — record, don't mask
                        results.append(exc)
            return results

        async def main():
            async with SQLServer(
                make_catalog(seed),
                parallelism=2,
                session_max_inflight=4,
                stats_history=10_000,
            ) as srv:
                rngs = [np.random.default_rng((seed, i)) for i in range(10)]
                tasks = []
                for i, rng in enumerate(rngs):
                    fn = rude_client if i % 2 else polite_client
                    tasks.append(fn(srv.port, rng, i))
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                # rude clients may hit connection errors; polite ones never do
                for i, out in enumerate(outcomes):
                    if i % 2 == 0:
                        assert not isinstance(out, BaseException), out
                        assert all(not isinstance(r, Exception) for r in out)
                await srv.session.drain()
                committed = assert_replay_matches(srv, seed)
                assert committed == srv.session.commit_count

        run_async(main())

    def test_disconnect_storm_leaves_server_serving(self):
        """Dozens of connects that immediately drop, interleaved with
        real queries."""

        async def main():
            async with SQLServer(make_catalog(77), max_connections=8) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    for round_ in range(6):
                        for _ in range(5):
                            _, writer = await asyncio.open_connection(
                                "127.0.0.1", srv.port
                            )
                            writer.close()
                        n = await cli.execute("SELECT COUNT(*) AS n FROM events")
                        assert n.rows[0][0] > 0
                assert srv.connections == 0 or srv.connections == 1

        run_async(main())
