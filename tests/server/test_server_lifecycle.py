"""Server lifecycle: handshake, statements, limits, drain, validation."""

import asyncio
import threading

import numpy as np
import pytest

from repro.server import (
    AsyncSQLClient,
    ConnectionClosedError,
    ServerClosedError,
    ServerError,
    SQLClient,
    SQLServer,
    validate_port,
)
from repro.server.protocol import PROTOCOL_VERSION, encode_frame, read_frame, write_frame
from repro.sql import AsyncSQLSession

from _harness import make_catalog, run_async

HEAVY = "SELECT eid, val FROM events WHERE val > 0.00001 ORDER BY val DESC, eid LIMIT 5"


def gate_session(async_session) -> threading.Event:
    """Block the inner session's ``run_prepared`` until the event is set.

    Statements keep their FIFO slots while gated, so tests can build a
    deterministic in-flight + queued shape on a small catalog instead
    of racing against query runtime.
    """
    gate = threading.Event()
    inner = async_session._session
    real = inner.run_prepared

    def gated(prepared, *args, **kwargs):
        assert gate.wait(60.0), "test gate never opened"
        return real(prepared, *args, **kwargs)

    inner.run_prepared = gated
    return gate


def test_select_dml_and_stats_over_the_wire():
    async def main():
        async with SQLServer(make_catalog(1), parallelism=2) as srv:
            async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                r = await cli.execute("SELECT COUNT(*) AS n FROM events WHERE grp < 10")
                assert r.columns == ["n"] and len(r.rows) == 1
                assert r.stats["kind"] == "read" and r.stats["write_seq"] == 0

                w = await cli.execute("UPDATE events SET val = val * 2.0 WHERE grp = 3")
                assert w.columns is None and w.rows is None
                assert w.row_count > 0
                assert w.stats["kind"] == "write" and w.stats["write_seq"] == 1

                r2 = await cli.execute("SELECT COUNT(*) AS n FROM metrics")
                assert r2.stats["write_seq"] == 1  # observed the write prefix
                assert srv.session.commit_count == 1

    run_async(main())


def test_sync_client_roundtrip_and_close():
    async def main():
        async with SQLServer(make_catalog(2)) as srv:

            def blocking(port):
                with SQLClient("127.0.0.1", port) as cli:
                    assert cli.server_info["version"] == PROTOCOL_VERSION
                    r = cli.execute("SELECT SUM(val) AS s FROM events")
                    assert r.columns == ["s"]
                    n = cli.execute("DELETE FROM events WHERE eid % 97 = 0").row_count
                    assert n > 0
                    return r.scalar()

            s = await asyncio.to_thread(blocking, srv.port)
            assert np.isfinite(s)

    run_async(main())


def test_prepare_run_prepared_and_unknown_name():
    async def main():
        async with SQLServer(make_catalog(3)) as srv:
            async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                ack = await cli.prepare("agg", "SELECT grp, COUNT(*) AS n FROM events GROUP BY grp ORDER BY grp")
                assert ack.row_count == 0
                first = await cli.run_prepared("agg")
                again = await cli.run_prepared("agg")
                assert first.rows == again.rows
                # prepared DML re-executes per run
                await cli.prepare("bump", "UPDATE events SET val = val + 1.0 WHERE grp = 1")
                assert (await cli.run_prepared("bump")).stats["write_seq"] == 1
                assert (await cli.run_prepared("bump")).stats["write_seq"] == 2
                with pytest.raises(ServerError) as err:
                    await cli.run_prepared("nope")
                assert err.value.code == "unknown-prepared"
                # prepare of invalid SQL answers a statement-level error
                with pytest.raises(ServerError) as err:
                    await cli.prepare("bad", "SELEC 1")
                assert err.value.code == "sql"

    run_async(main())


def test_prepared_statements_are_connection_local():
    async def main():
        async with SQLServer(make_catalog(4)) as srv:
            a = await AsyncSQLClient.connect("127.0.0.1", srv.port)
            b = await AsyncSQLClient.connect("127.0.0.1", srv.port)
            await a.prepare("q", "SELECT COUNT(*) AS n FROM events")
            with pytest.raises(ServerError) as err:
                await b.run_prepared("q")
            assert err.value.code == "unknown-prepared"
            await a.aclose()
            await b.aclose()

    run_async(main())


def test_sql_errors_keep_connection_usable():
    async def main():
        async with SQLServer(make_catalog(5)) as srv:
            async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                for bad, code in [
                    ("SELEC 1", "sql"),  # parse error
                    ("SELECT x FROM no_such_table", "sql"),  # execution error
                ]:
                    with pytest.raises(ServerError) as err:
                        await cli.execute(bad)
                    assert err.value.code == code and not err.value.fatal
                ok = await cli.execute("SELECT COUNT(*) AS n FROM events")
                assert ok.rows[0][0] == len(
                    srv.session.catalog.table("events").rowids()
                )

    run_async(main())


class TestHandshake:
    def test_wrong_token_rejected(self):
        async def main():
            async with SQLServer(make_catalog(6), auth_token="s3cret") as srv:
                with pytest.raises(ServerError) as err:
                    await AsyncSQLClient.connect("127.0.0.1", srv.port, token="wrong")
                assert err.value.code == "auth" and err.value.fatal
                with pytest.raises(ServerError) as err:
                    await AsyncSQLClient.connect("127.0.0.1", srv.port)  # missing
                assert err.value.code == "auth"
                cli = await AsyncSQLClient.connect("127.0.0.1", srv.port, token="s3cret")
                await cli.aclose()

        run_async(main())

    def test_token_ignored_when_server_has_none(self):
        async def main():
            async with SQLServer(make_catalog(6)) as srv:
                cli = await AsyncSQLClient.connect("127.0.0.1", srv.port, token="x")
                assert (await cli.execute("SELECT COUNT(*) AS n FROM events")).rows
                await cli.aclose()

        run_async(main())

    def test_version_mismatch_rejected(self):
        async def main():
            async with SQLServer(make_catalog(6)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await write_frame(writer, {"type": "hello", "version": 99})
                frame = await read_frame(reader)
                assert frame["type"] == "error" and frame["code"] == "protocol"
                assert await read_frame(reader) is None  # server closed
                writer.close()

        run_async(main())

    def test_first_frame_must_be_hello(self):
        async def main():
            async with SQLServer(make_catalog(6)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await write_frame(writer, {"type": "query", "id": 1, "sql": "SELECT 1"})
                frame = await read_frame(reader)
                assert frame["type"] == "error" and frame["code"] == "protocol"
                writer.close()

        run_async(main())


class TestLimits:
    def test_max_connections_turns_excess_away(self):
        async def main():
            async with SQLServer(make_catalog(7), max_connections=2) as srv:
                a = await AsyncSQLClient.connect("127.0.0.1", srv.port)
                b = await AsyncSQLClient.connect("127.0.0.1", srv.port)
                with pytest.raises(ServerError) as err:
                    await AsyncSQLClient.connect("127.0.0.1", srv.port)
                assert err.value.code == "capacity" and err.value.fatal
                await a.aclose()
                # a slot freed: accepted again
                c = await AsyncSQLClient.connect("127.0.0.1", srv.port)
                await c.aclose()
                await b.aclose()

        run_async(main())

    def test_per_connection_inflight_backpressure(self):
        async def main():
            async with SQLServer(
                make_catalog(8), max_inflight=2, session_max_inflight=8
            ) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    sids = [await cli.submit(HEAVY) for _ in range(6)]
                    # the per-connection semaphore admits at most 2 into
                    # the session at once
                    for _ in range(200):
                        assert srv.session.inflight + srv.session.queued <= 2
                        if all(cli._pending[s].done() for s in sids):
                            break
                        await asyncio.sleep(0.005)
                    results = [await cli.wait(s) for s in sids]
                    assert all(r.row_count == 5 for r in results)

        run_async(main())

    def test_statement_id_reuse_is_fatal(self):
        async def main():
            async with SQLServer(make_catalog(8)) as srv:
                reader, writer = await asyncio.open_connection("127.0.0.1", srv.port)
                await write_frame(writer, {"type": "hello", "version": PROTOCOL_VERSION})
                assert (await read_frame(reader))["type"] == "hello_ok"
                writer.write(
                    encode_frame({"type": "query", "id": 1, "sql": HEAVY})
                    + encode_frame({"type": "query", "id": 1, "sql": HEAVY})
                )
                await writer.drain()
                frames = []
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        break
                    frames.append(frame)
                codes = [f.get("code") for f in frames if f["type"] == "error"]
                assert "protocol" in codes  # id reuse is fatal
                writer.close()

        run_async(main())


class TestDrain:
    def test_queued_statements_get_typed_errors_inflight_commits(self):
        async def main():
            catalog = make_catalog(9)
            srv = await SQLServer(
                catalog, session_max_inflight=1, max_inflight=8
            ).start()
            gate = gate_session(srv.session)
            cli = await AsyncSQLClient.connect("127.0.0.1", srv.port)
            write = "UPDATE events SET val = val * 1.5 WHERE val > 0.00001"
            sids = [await cli.submit(write)] + [await cli.submit(HEAVY) for _ in range(3)]
            while srv.session.inflight < 1 or srv.session.queued < 3:
                await asyncio.sleep(0.001)
            closer = asyncio.create_task(srv.aclose())
            while srv.session.queued:  # drain aborts the queue first...
                await asyncio.sleep(0.001)
            gate.set()  # ...then the in-flight write may commit
            outcomes = []
            for sid in sids:
                try:
                    outcomes.append(("ok", (await cli.wait(sid)).stats["kind"]))
                except ServerError as err:
                    outcomes.append(("err", err.code))
            await closer
            # the in-flight write committed, every queued read was aborted
            # with the typed drain error
            assert outcomes[0] == ("ok", "write")
            assert outcomes[1:] == [("err", "server-closed")] * 3
            assert srv.session.commit_count == 1
            await cli.aclose()

        run_async(main())

    def test_drain_is_idempotent_and_refuses_new_connections(self):
        async def main():
            srv = await SQLServer(make_catalog(9)).start()
            cli = await AsyncSQLClient.connect("127.0.0.1", srv.port)
            await cli.execute("SELECT COUNT(*) AS n FROM events")
            await srv.aclose()
            await srv.aclose()  # idempotent
            with pytest.raises((ServerError, ConnectionClosedError, ConnectionError, OSError)):
                await AsyncSQLClient.connect("127.0.0.1", srv.port)
            await cli.aclose()

        run_async(main())

    def test_session_shutdown_rejects_new_statements_with_typed_error(self):
        """Regression: executing on a draining session raises
        ServerClosedError (a RuntimeError subclass) instead of hanging."""

        async def main():
            db = AsyncSQLSession(make_catalog(9))
            await db.shutdown()
            with pytest.raises(ServerClosedError):
                await db.execute("SELECT COUNT(*) AS n FROM events")
            with pytest.raises(RuntimeError):  # back-compat contract
                await db.execute("SELECT COUNT(*) AS n FROM events")
            assert await db.shutdown() == 0  # idempotent
            await db.aclose()  # no-op after shutdown

        run_async(main())

    def test_session_shutdown_aborts_queued_statements(self):
        async def main():
            db = AsyncSQLSession(make_catalog(9), max_inflight=1)
            gate = gate_session(db)
            blocker = asyncio.create_task(db.execute(HEAVY))
            queued = [asyncio.create_task(db.execute(HEAVY)) for _ in range(3)]
            while db.inflight < 1 or db.queued < 3:
                await asyncio.sleep(0.001)
            closer = asyncio.create_task(db.shutdown())
            while db.queued:
                await asyncio.sleep(0.001)
            gate.set()
            aborted = await closer
            assert aborted == 3
            assert (await blocker).num_rows == 5  # in-flight completed
            for task in queued:
                with pytest.raises(ServerClosedError):
                    await task

        run_async(main())


class TestCancel:
    def test_cancel_queued_statement(self):
        async def main():
            async with SQLServer(make_catalog(10), session_max_inflight=1) as srv:
                gate = gate_session(srv.session)
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    s1 = await cli.submit(HEAVY)
                    s2 = await cli.submit("SELECT COUNT(*) AS n FROM events")
                    while srv.session.queued < 1:
                        await asyncio.sleep(0.001)
                    await cli.cancel(s2)
                    with pytest.raises(ServerError) as err:
                        await cli.wait(s2)
                    assert err.value.code == "query-cancelled" and not err.value.fatal
                    gate.set()
                    assert (await cli.wait(s1)).row_count == 5
                    # the connection survives a cancellation
                    assert (await cli.execute("SELECT COUNT(*) AS n FROM events")).rows

        run_async(main())

    def test_cancel_unknown_target_is_ignored(self):
        async def main():
            async with SQLServer(make_catalog(10)) as srv:
                async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                    await cli.cancel(12345)  # no such statement: no-op
                    assert (await cli.execute("SELECT COUNT(*) AS n FROM events")).rows

        run_async(main())


class TestKnobValidation:
    @pytest.mark.parametrize("value", [0, -1, 1.5, "4", True, None])
    def test_max_connections_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLServer(make_catalog(11), max_connections=value)

    @pytest.mark.parametrize("value", [0, -3, 2.0, "8", False])
    def test_max_inflight_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLServer(make_catalog(11), max_inflight=value)

    @pytest.mark.parametrize("value", [-1, 65536, 1.5, "80", True])
    def test_port_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLServer(make_catalog(11), port=value)

    def test_validate_port_accepts_range(self):
        assert validate_port(0) == 0
        assert validate_port(65535) == 65535
        assert validate_port(np.int64(8080)) == 8080

    def test_session_max_inflight_forwarded_and_validated(self):
        with pytest.raises(ValueError):
            SQLServer(make_catalog(11), session_max_inflight=0)
        srv = SQLServer(make_catalog(11), session_max_inflight=3)
        assert srv.session.max_inflight == 3
        srv.session.close()

    @pytest.mark.parametrize("value", [0, -1, 1.5, "250", True])
    def test_statement_timeout_ms_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLServer(make_catalog(11), statement_timeout_ms=value)

    @pytest.mark.parametrize("value", [0, -3, 2.0, "8", False])
    def test_session_max_queued_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLServer(make_catalog(11), session_max_queued=value)

    @pytest.mark.parametrize("value", [0, -1.0, "2", True])
    def test_stall_timeout_rejected(self, value):
        with pytest.raises((TypeError, ValueError)):
            SQLServer(make_catalog(11), stall_timeout_s=value)

    def test_resilience_knobs_forwarded(self):
        srv = SQLServer(
            make_catalog(11),
            session_max_queued=5,
            statement_timeout_ms=1_000,
            stall_timeout_s=2.5,
        )
        assert srv.session.max_queued == 5
        assert srv.session.statement_timeout_ms == 1_000
        srv.session.close()
