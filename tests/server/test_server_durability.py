"""Durability through the TCP front door.

A :class:`SQLServer` opened on a ``data_dir`` recovers before it
accepts connections, and its graceful drain flushes the WAL and writes
a shutdown checkpoint — so a restart replays nothing and serves the
exact pre-shutdown state.
"""

import numpy as np

from repro.server import AsyncSQLClient, SQLServer
from repro.sql import SQLSession
from repro.storage import recovery

from _harness import assert_table_equal, make_catalog, run_async


def test_server_writes_survive_restart(tmp_path):
    data_dir = str(tmp_path)
    seed = 31

    async def first_run():
        async with SQLServer(
            make_catalog(seed), parallelism=2, data_dir=data_dir
        ) as srv:
            assert srv.session.data_dir == data_dir
            async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                for k in range(6):
                    r = await cli.execute(
                        f"UPDATE events SET val = val * 1.1 WHERE grp = {k}"
                    )
                    assert r.stats["write_seq"] == k + 1
                await cli.execute("DELETE FROM metrics WHERE bucket = 3")
            return srv.session.catalog

    catalog = run_async(first_run())

    # graceful drain checkpointed: the WAL tail is empty on restart
    async def second_run():
        async with SQLServer(
            make_catalog(seed), parallelism=2, data_dir=data_dir
        ) as srv:
            report = srv.session.durability.recovery_report
            assert report.records_replayed == 0
            assert report.checkpoint_path is not None
            for name in ("events", "metrics"):
                assert_table_equal(
                    srv.session.catalog.table(name), catalog.table(name), name
                )
            # and the restarted server keeps appending where it left off
            async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                r = await cli.execute("UPDATE events SET val = 0.0 WHERE grp = 0")
                assert r.stats["write_seq"] == 1  # fresh session, fresh order
            return srv.session.catalog

    catalog2 = run_async(second_run())
    assert float(
        catalog2.table("events").column("val")[
            catalog2.table("events").column("grp") == 0
        ].sum()
    ) == 0.0


def test_abandoned_server_session_recovers_from_wal(tmp_path):
    """No graceful drain: the WAL tail alone reconstructs the state."""
    data_dir = str(tmp_path)
    seed = 32

    async def crashy_run():
        srv = SQLServer(make_catalog(seed), parallelism=2, data_dir=data_dir)
        await srv.start()
        try:
            async with await AsyncSQLClient.connect("127.0.0.1", srv.port) as cli:
                for k in range(5):
                    await cli.execute(
                        f"UPDATE metrics SET v = v + 1.0 WHERE bucket = {k}"
                    )
        finally:
            # crash: tear the listener and the pool down, but skip the
            # session close (no final sync, no shutdown checkpoint)
            srv._server.close()
            await srv._server.wait_closed()
            srv.session._context.close()

    run_async(crashy_run())

    records = recovery.read_records(data_dir)
    assert len([r for r in records if r.kind == "write"]) == 5

    recovered = SQLSession(make_catalog(seed), data_dir=data_dir)
    assert recovered.durability.recovery_report.records_replayed == 5
    oracle = SQLSession(make_catalog(seed))
    for r in records:
        oracle.execute(r.sql)
    for name in ("events", "metrics"):
        assert_table_equal(
            recovered.catalog.table(name), oracle.catalog.table(name), name
        )
    np.testing.assert_array_equal(
        recovered.catalog.table("metrics").partitions[0].column("v"),
        oracle.catalog.table("metrics").partitions[0].column("v"),
    )
    recovered.close()
    oracle.close()
