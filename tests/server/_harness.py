"""Shared helpers for the server test suite.

The replay-check pattern (and ``make_catalog``/``assert_table_equal``)
follows the PR 4 async fuzz harness
(``tests/integration/test_async_fuzz.py``): run a concurrent workload,
then replay the committed write log serially on an identical catalog
and require bit-identical final state.
"""

import asyncio

import numpy as np

from repro.server import SQLServer
from repro.sql import SQLSession
from repro.storage import Catalog, PartitionedTable, Table

TIMEOUT = 180.0
N_EVENTS = 4_000
N_METRICS = 3_000


def run_async(coro, timeout: float = TIMEOUT):
    """Run a coroutine under a deadlock-guard timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_catalog(seed: int) -> Catalog:
    """events (plain) + metrics (4-way partitioned), seeded."""
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    catalog.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(N_EVENTS, dtype=np.int64),
                "grp": rng.integers(0, 30, N_EVENTS).astype(np.int64),
                "val": rng.random(N_EVENTS),
            },
        )
    )
    metrics = Table.from_arrays(
        "metrics",
        {
            "mid": np.arange(N_METRICS, dtype=np.int64),
            "bucket": rng.integers(0, 12, N_METRICS).astype(np.int64),
            "v": rng.random(N_METRICS),
        },
    )
    catalog.register(PartitionedTable.from_table(metrics, "mid", 4))
    return catalog


def assert_table_equal(a, b, name: str) -> None:
    """Bit-identical table comparison (partition-aware)."""
    if isinstance(a, PartitionedTable):
        assert isinstance(b, PartitionedTable)
        assert a.num_partitions == b.num_partitions, name
        pairs = list(zip(a.partitions, b.partitions))
    else:
        pairs = [(a, b)]
    for i, (pa, pb) in enumerate(pairs):
        assert pa.num_rows == pb.num_rows, (name, i)
        for col in pa.schema.names:
            x, y = pa.column(col), pb.column(col)
            assert x.dtype == y.dtype, (name, i, col)
            np.testing.assert_array_equal(x, y, err_msg=f"{name}[{i}].{col}")


def assert_replay_matches(server: SQLServer, seed: int) -> int:
    """Replay the server session's committed write log serially.

    Reads the shared session's stats (which record every executed
    statement, including ones whose client disconnected), checks the
    commit sequence is gapless, replays it on a fresh catalog through a
    blocking session, and requires bit-identical final state.  Returns
    the number of committed writes.
    """
    writes = sorted(
        (s.write_seq, s.sql) for s in server.stats() if s.kind == "write"
    )
    assert [seq for seq, _ in writes] == list(
        range(1, len(writes) + 1)
    ), "commit sequence has gaps or duplicates"
    assert server.session.commit_count == len(writes)
    replay_catalog = make_catalog(seed)
    with SQLSession(replay_catalog) as replay:
        for _, sql in writes:
            replay.execute(sql)
    for name in ("events", "metrics"):
        assert_table_equal(
            server.session.catalog.table(name), replay_catalog.table(name), name
        )
    return len(writes)
