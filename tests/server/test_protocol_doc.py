"""The spec's embedded frame examples run through the real codec.

``docs/protocol.md`` is normative: every ```` ```json ```` block must
be a valid protocol message, and the ```` ```hex ```` block following
it must be that message's exact canonical frame bytes.  This test
extracts the blocks and holds the codec to them — a codec change that
invalidates the spec (or vice versa) fails here.
"""

import json
import pathlib
import re

import pytest

from repro.server.protocol import (
    CLIENT_MESSAGES,
    SERVER_MESSAGES,
    HEADER,
    decode_frame,
    encode_frame,
    validate_message,
)

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "protocol.md"

FENCE = re.compile(r"```(json|hex)\n(.*?)```", re.DOTALL)

ALL_MESSAGES = {**CLIENT_MESSAGES, **SERVER_MESSAGES}


def doc_blocks():
    """(kind, text) for every json/hex fenced block, in document order."""
    text = DOC.read_text(encoding="utf-8")
    return [(m.group(1), m.group(2)) for m in FENCE.finditer(text)]


def doc_examples():
    """Pair each json block with the hex block that follows it."""
    blocks = doc_blocks()
    examples = []
    for i, (kind, body) in enumerate(blocks):
        if kind != "json":
            continue
        message = json.loads(body)
        frame = None
        if i + 1 < len(blocks) and blocks[i + 1][0] == "hex":
            frame = bytes.fromhex(blocks[i + 1][1].replace("\n", " "))
        examples.append((message, frame))
    return examples


EXAMPLES = doc_examples()


def test_doc_has_examples_for_every_message_type():
    assert EXAMPLES, f"no examples found in {DOC}"
    covered = {m["type"] for m, _ in EXAMPLES}
    assert covered == set(ALL_MESSAGES), (
        f"spec examples missing message types: {sorted(set(ALL_MESSAGES) - covered)}"
    )


@pytest.mark.parametrize(
    "message, frame",
    EXAMPLES,
    ids=[f"{i}-{m['type']}" for i, (m, _) in enumerate(EXAMPLES)],
)
def test_doc_example_roundtrips_through_codec(message, frame):
    # every json example is a valid message on exactly one side
    tables = [t for t in (CLIENT_MESSAGES, SERVER_MESSAGES) if message["type"] in t]
    assert len(tables) == 1
    validate_message(message, tables[0])
    # the hex block is the canonical frame: encode matches byte for byte
    assert frame is not None, f"{message['type']} example has no hex block"
    assert encode_frame(message) == frame
    # and the frame decodes back to the example message
    (length,) = HEADER.unpack(frame[: HEADER.size])
    assert length == len(frame) - HEADER.size
    assert decode_frame(frame[HEADER.size :]) == message


def test_doc_error_codes_match_module():
    """§5's code table lists exactly the codes the module defines."""
    from repro.server import protocol

    text = DOC.read_text(encoding="utf-8")
    section = text.split("## §5")[1].split("## §6")[0]
    listed = set(re.findall(r"^\| `([a-z-]+)`", section, re.MULTILINE))
    assert listed == set(protocol.ERROR_CODES)


def test_doc_retryable_column_matches_module():
    """§5's retryable column is exactly ``RETRYABLE_ERROR_CODES``."""
    from repro.server import protocol

    text = DOC.read_text(encoding="utf-8")
    section = text.split("## §5")[1].split("## §6")[0]
    rows = re.findall(
        r"^\| `([a-z-]+)`\s*\| [a-z]+\s*\| [a-z*]+\s*\| ([a-z]+)",
        section,
        re.MULTILINE,
    )
    assert rows, "no parseable taxonomy rows in §5"
    retryable = {code for code, flag in rows if flag == "yes"}
    assert retryable == set(protocol.RETRYABLE_ERROR_CODES)
