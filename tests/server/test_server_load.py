"""32 concurrent connections, zero lost or duplicated statements.

The PR's acceptance bar: a 32-connection mixed read/write workload
through the TCP front door must commit a gapless write sequence whose
serial replay on an identical catalog is bit-identical to the server's
final state — whatever interleaving the scheduler chose, the outcome
is one of the serial histories, with every acknowledged write present
exactly once.
"""

import asyncio

import numpy as np
import pytest

from _harness import assert_replay_matches, make_catalog, run_async
from repro.server import AsyncSQLClient, SQLServer

N_CONNECTIONS = 32
STATEMENTS_PER_CLIENT = 8

READS = [
    "SELECT COUNT(*) AS n FROM events WHERE grp < {k}",
    "SELECT SUM(val) AS s FROM events WHERE grp % 3 = {m3}",
    "SELECT grp, COUNT(*) AS n FROM events GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) AS n FROM metrics WHERE bucket = {b}",
]
WRITES = [
    "UPDATE events SET val = val * 1.01 WHERE grp = {k}",
    "DELETE FROM events WHERE eid % 223 = {m7}",
    "INSERT INTO events (eid, grp, val) VALUES ({ins}, {k}, 0.25)",
    "UPDATE metrics SET v = v + 0.001 WHERE bucket = {b}",
]


def client_script(seed: int, client_id: int):
    rng = np.random.default_rng((seed, client_id))
    out = []
    for step in range(STATEMENTS_PER_CLIENT):
        params = {
            "k": int(rng.integers(0, 30)),
            "m3": int(rng.integers(0, 3)),
            "m7": int(rng.integers(0, 7)),
            "b": int(rng.integers(0, 12)),
            "ins": 1_000_000 + client_id * 1_000 + step,
        }
        pool = READS if rng.random() < 0.5 else WRITES
        out.append(pool[rng.integers(len(pool))].format(**params))
    return out


@pytest.mark.parametrize("seed", [11, 47])
def test_32_connections_mixed_workload_replays_bit_identical(seed):
    async def client(port, client_id, acks):
        async with await AsyncSQLClient.connect("127.0.0.1", port) as cli:
            for sql in client_script(seed, client_id):
                result = await cli.execute(sql)  # raises on any error frame
                acks.append((client_id, sql, result.stats["write_seq"]))

    async def main():
        async with SQLServer(
            make_catalog(seed),
            parallelism=2,
            session_max_inflight=6,
            max_connections=N_CONNECTIONS,
            stats_history=10_000,
        ) as srv:
            acks = []
            await asyncio.gather(
                *(client(srv.port, i, acks) for i in range(N_CONNECTIONS))
            )
            assert srv.connections == 0

            # every statement was acknowledged exactly once
            assert len(acks) == N_CONNECTIONS * STATEMENTS_PER_CLIENT
            per_client = {}
            for client_id, sql, _ in acks:
                per_client.setdefault(client_id, []).append(sql)
            for i in range(N_CONNECTIONS):
                assert per_client[i] == client_script(seed, i)

            # acknowledged writes and the server's write log agree 1:1
            acked_write_seqs = sorted(
                seq
                for (_, sql, seq) in acks
                if sql.split()[0] in {"UPDATE", "DELETE", "INSERT"}
            )
            assert acked_write_seqs == list(range(1, len(acked_write_seqs) + 1))
            assert srv.session.commit_count == len(acked_write_seqs)

            # gapless commit order whose serial replay is bit-identical
            committed = assert_replay_matches(srv, seed)
            assert committed == len(acked_write_seqs)

    run_async(main())


def test_full_house_queries_answered_fairly():
    """All 32 connections fire the same query simultaneously; every one
    of them gets the same correct answer."""

    async def one(port, results):
        async with await AsyncSQLClient.connect("127.0.0.1", port) as cli:
            r = await cli.execute("SELECT COUNT(*) AS n FROM events")
            results.append(r.rows[0][0])

    async def main():
        async with SQLServer(
            make_catalog(5), max_connections=N_CONNECTIONS, session_max_inflight=8
        ) as srv:
            expected = len(srv.session.catalog.table("events").rowids())
            results = []
            await asyncio.gather(*(one(srv.port, results) for i in range(N_CONNECTIONS)))
            assert results == [expected] * N_CONNECTIONS

    run_async(main())
