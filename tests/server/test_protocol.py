"""Unit tests for the wire-protocol codec (framing, validation)."""

import asyncio
import json
import math
import struct

import pytest

from repro.server.protocol import (
    CLIENT_MESSAGES,
    DEFAULT_MAX_FRAME_BYTES,
    ERROR_CODES,
    FATAL_ERROR_CODES,
    HEADER,
    SERVER_MESSAGES,
    ConnectionClosedError,
    FrameTooLargeError,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    read_frame,
    validate_message,
)


def roundtrip(message):
    frame = encode_frame(message)
    (length,) = HEADER.unpack(frame[: HEADER.size])
    assert length == len(frame) - HEADER.size
    return decode_frame(frame[HEADER.size :])


class TestFraming:
    def test_roundtrip_identity(self):
        msg = {"type": "query", "id": 7, "sql": "SELECT 1 AS x FROM t"}
        assert roundtrip(msg) == msg

    def test_encoding_is_canonical_and_deterministic(self):
        a = encode_frame({"type": "cancel", "target": 3})
        b = encode_frame({"target": 3, "type": "cancel"})  # key order irrelevant
        assert a == b
        assert b" " not in a[HEADER.size :]

    def test_length_prefix_is_big_endian_u32(self):
        frame = encode_frame({"type": "close"})
        assert frame[: HEADER.size] == struct.pack(">I", len(frame) - HEADER.size)

    def test_non_finite_floats_roundtrip(self):
        msg = {"type": "result", "id": 1, "row_count": 1, "rows": [[float("nan"), float("inf")]]}
        out = roundtrip(msg)
        assert math.isnan(out["rows"][0][0]) and math.isinf(out["rows"][0][1])

    def test_encode_rejects_untyped_message(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1})

    def test_encode_rejects_oversized_body(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"type": "query", "id": 1, "sql": "x" * 100}, max_frame_bytes=64)

    @pytest.mark.parametrize(
        "body",
        [
            b"\xff\xfe not utf8 \x80",
            b"{not json}",
            b"[1,2,3]",
            b'"a string"',
            b"{}",
            b'{"type":42}',
        ],
    )
    def test_decode_rejects_garbage_bodies(self, body):
        with pytest.raises(ProtocolError):
            decode_frame(body)


class TestValidation:
    @pytest.mark.parametrize("mtype", sorted(CLIENT_MESSAGES))
    def test_client_specs_are_self_consistent(self, mtype):
        msg = {"type": mtype}
        for field, ftype in CLIENT_MESSAGES[mtype]:
            msg[field] = 1 if ftype is int else "x"
        assert validate_message(msg, CLIENT_MESSAGES) == mtype

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            validate_message({"type": "qurey", "id": 1, "sql": "x"}, CLIENT_MESSAGES)

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing field"):
            validate_message({"type": "query", "id": 1}, CLIENT_MESSAGES)

    def test_mistyped_field_rejected(self):
        with pytest.raises(ProtocolError, match="must be int"):
            validate_message({"type": "query", "id": "1", "sql": "x"}, CLIENT_MESSAGES)

    def test_bool_is_not_an_id(self):
        with pytest.raises(ProtocolError, match="must be int"):
            validate_message({"type": "query", "id": True, "sql": "x"}, CLIENT_MESSAGES)

    def test_unknown_fields_ignored_for_forward_compat(self):
        msg = {"type": "close", "future_field": [1, 2, 3]}
        assert validate_message(msg, CLIENT_MESSAGES) == "close"

    def test_server_and_client_tables_are_disjoint(self):
        assert not set(CLIENT_MESSAGES) & set(SERVER_MESSAGES)

    def test_error_frame_builder_enforces_codes(self):
        frame = error_frame("sql", "boom", id=4)
        assert validate_message(frame, SERVER_MESSAGES) == "error"
        assert frame["id"] == 4
        with pytest.raises(ValueError):
            error_frame("no-such-code", "boom")

    def test_fatal_codes_are_a_subset(self):
        assert FATAL_ERROR_CODES < ERROR_CODES


class TestStreamReading:
    def run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, 30))

    def feed(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_frame_roundtrip(self):
        async def main():
            msg = {"type": "hello", "version": 1}
            return await read_frame(self.feed(encode_frame(msg)))

        assert self.run(main()) == {"type": "hello", "version": 1}

    def test_clean_eof_returns_none(self):
        async def main():
            return await read_frame(self.feed(b""))

        assert self.run(main()) is None

    def test_eof_inside_header_raises(self):
        async def main():
            await read_frame(self.feed(b"\x00\x00"))

        with pytest.raises(ConnectionClosedError):
            self.run(main())

    def test_eof_inside_body_raises(self):
        async def main():
            frame = encode_frame({"type": "close"})
            await read_frame(self.feed(frame[:-3]))

        with pytest.raises(ConnectionClosedError):
            self.run(main())

    def test_oversized_declared_length_rejected_before_read(self):
        async def main():
            header = HEADER.pack(DEFAULT_MAX_FRAME_BYTES + 1)
            await read_frame(self.feed(header))

        with pytest.raises(FrameTooLargeError):
            self.run(main())

    def test_two_frames_back_to_back(self):
        async def main():
            data = encode_frame({"type": "close"}) + encode_frame({"type": "goodbye"})
            reader = self.feed(data)
            return await read_frame(reader), await read_frame(reader)

        first, second = self.run(main())
        assert first == {"type": "close"} and second == {"type": "goodbye"}


def test_spec_field_tables_match_module_doc():
    """The message tables drive both validation and the spec; pin the
    full field inventory so a silent spec drift fails loudly."""
    assert {m: [f for f, _ in spec] for m, spec in CLIENT_MESSAGES.items()} == {
        "hello": ["version"],
        "query": ["id", "sql"],
        "prepare": ["id", "name", "sql"],
        "run_prepared": ["id", "name"],
        "cancel": ["target"],
        "close": [],
    }
    assert {m: [f for f, _ in spec] for m, spec in SERVER_MESSAGES.items()} == {
        "hello_ok": ["version"],
        "result": ["id", "row_count"],
        "error": ["code", "error"],
        "goodbye": [],
    }
    json.dumps(sorted(ERROR_CODES))  # codes are JSON-serializable strings
