"""Unit tests for the materialization baselines."""

import numpy as np
import pytest

from repro.materialization import JoinIndex, MaterializedView, SortKey
from repro.storage import Catalog, PartitionedTable, Table


def make_table(n=100, name="t"):
    values = np.arange(n, dtype=np.int64)
    values[::10] = -1
    return Table.from_arrays(name, {"k": np.arange(n), "v": values})


class TestMaterializedView:
    def test_contains_distinct_values(self):
        t = make_table(100)
        mv = MaterializedView(t, "v")
        expected = np.unique(t.column("v"))
        np.testing.assert_array_equal(mv.scan_values(), expected)

    def test_immediate_refresh_on_update(self):
        t = make_table(100)
        mv = MaterializedView(t, "v")
        n0 = mv.refresh_count
        t.insert({"k": np.array([100]), "v": np.array([12345])})
        assert mv.refresh_count == n0 + 1
        assert 12345 in mv.scan_values()
        assert not mv.is_stale

    def test_manual_policy_goes_stale(self):
        t = make_table(100)
        mv = MaterializedView(t, "v", refresh_policy="manual")
        t.insert({"k": np.array([100]), "v": np.array([777])})
        assert mv.is_stale
        assert 777 not in mv.scan_values()
        mv.refresh()
        assert 777 in mv.scan_values()

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            MaterializedView(make_table(), "v", refresh_policy="never")

    def test_detach_stops_refreshing(self):
        t = make_table(100)
        mv = MaterializedView(t, "v")
        mv.detach()
        t.insert({"k": np.array([100]), "v": np.array([888])})
        assert 888 not in mv.scan_values()

    def test_memory_grows_with_distinct_count(self):
        big = Table.from_arrays("b", {"v": np.arange(10000, dtype=np.int64)})
        small = Table.from_arrays("s", {"v": np.zeros(10000, dtype=np.int64)})
        assert (
            MaterializedView(big, "v").memory_bytes()
            > MaterializedView(small, "v").memory_bytes()
        )


class TestSortKey:
    def test_sorted_scan(self):
        t = Table.from_arrays("t", {"v": np.array([3, 1, 2]), "p": np.array([30, 10, 20])})
        sk = SortKey(t, "v")
        out = sk.scan_sorted()
        np.testing.assert_array_equal(out["v"], [1, 2, 3])
        np.testing.assert_array_equal(out["p"], [10, 20, 30])

    def test_descending(self):
        t = Table.from_arrays("t", {"v": np.array([3, 1, 2])})
        sk = SortKey(t, "v", ascending=False)
        np.testing.assert_array_equal(sk.scan_sorted()["v"], [3, 2, 1])

    def test_partitioned_scan_merges(self):
        base = Table.from_arrays(
            "t", {"k": np.arange(40), "v": np.arange(40, dtype=np.int64)[::-1]}
        )
        pt = PartitionedTable.from_table(base, "k", 4)
        sk = SortKey(pt, "v")
        np.testing.assert_array_equal(sk.scan_sorted(["v"])["v"], np.arange(40))

    def test_refresh_on_update(self):
        t = Table.from_arrays("t", {"k": np.arange(5), "v": np.array([5, 4, 3, 2, 1])})
        sk = SortKey(t, "v")
        t.insert({"k": np.array([5]), "v": np.array([0])})
        assert sk.refresh_count >= 1
        np.testing.assert_array_equal(sk.scan_sorted(["v"])["v"], [0, 1, 2, 3, 4, 5])

    def test_catalog_registration_enables_sortedness(self):
        cat = Catalog()
        t = make_table()
        cat.register(t)
        SortKey(t, "v", catalog=cat)
        assert cat.structure("sortkey", "t", "v") is not None

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            SortKey(make_table(), "v", refresh_policy="sometimes")


class TestJoinIndex:
    def setup_tables(self):
        dim = Table.from_arrays(
            "dim", {"dk": np.arange(10, dtype=np.int64), "dval": np.arange(10) * 100}
        )
        fact = Table.from_arrays(
            "fact",
            {"fk": np.array([0, 3, 3, 9, 5], dtype=np.int64),
             "fval": np.arange(5, dtype=np.int64)},
        )
        return fact, dim

    def test_partners_computed(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        np.testing.assert_array_equal(ji.partners, [0, 3, 3, 9, 5])
        assert ji.verify()

    def test_join_gathers_dimension_columns(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        out = ji.join(["fval"], ["dval"])
        np.testing.assert_array_equal(out["dval"], [0, 300, 300, 900, 500])

    def test_join_with_mask(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        mask = np.array([True, False, True, False, False])
        out = ji.join(["fval"], ["dval"], fact_mask=mask)
        np.testing.assert_array_equal(out["dval"], [0, 300])

    def test_unmatched_fact_rows_dropped(self):
        dim = Table.from_arrays("dim", {"dk": np.array([1, 2], dtype=np.int64)})
        fact = Table.from_arrays("fact", {"fk": np.array([1, 99], dtype=np.int64)})
        ji = JoinIndex(fact, "fk", dim, "dk")
        out = ji.join(["fk"], [])
        np.testing.assert_array_equal(out["fk"], [1])

    def test_insert_maintenance(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        fact.insert({"fk": np.array([7]), "fval": np.array([5])})
        assert ji.partners[-1] == 7
        assert ji.verify()

    def test_delete_maintenance(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        fact.delete(np.array([0, 2]))
        assert ji.verify()

    def test_modify_maintenance(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        fact.modify(np.array([0]), {"fk": np.array([8])})
        assert ji.partners[0] == 8
        assert ji.verify()

    def test_memory_is_one_int_per_fact_row(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        assert ji.memory_bytes() == fact.num_rows * 8

    def test_detach(self):
        fact, dim = self.setup_tables()
        ji = JoinIndex(fact, "fk", dim, "dk")
        ji.detach()
        fact.insert({"fk": np.array([1]), "fval": np.array([0])})
        assert len(ji.partners) == 5
