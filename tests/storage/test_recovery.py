"""Corruption-matrix tests for crash recovery.

The satellite contract from the durability PR: a torn *final* frame is
truncated and recovery proceeds; a bit-flipped *mid-log* frame is a
typed startup refusal; an empty or missing WAL next to a valid
checkpoint recovers from the checkpoint alone; and a corrupt newest
checkpoint falls back to the previous one.
"""

import os

import numpy as np
import pytest

from repro.sql import SQLSession
from repro.storage import (
    Catalog,
    CheckpointCorruptionError,
    Table,
    WALCorruptionError,
)
from repro.storage import recovery, wal as walmod


def make_catalog():
    cat = Catalog()
    cat.register(
        Table.from_arrays(
            "t",
            {"a": np.arange(50, dtype=np.int64), "b": np.arange(50) * 0.5},
        )
    )
    return cat


def durable_session(tmp_path, **kwargs):
    return SQLSession(make_catalog(), data_dir=str(tmp_path), **kwargs)


def newest_segment(data_dir) -> str:
    return recovery.list_segments(str(data_dir))[-1][1]


def write_some(session, n=6):
    for i in range(n):
        session.execute(f"UPDATE t SET b = b + 1 WHERE a % {n + 1} = {i}")


# ----------------------------------------------------------------------
# torn tail: truncate and recover
# ----------------------------------------------------------------------
def test_torn_final_frame_truncates_and_recovers(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    # simulate a crash mid-append: chop the last frame in half
    seg = newest_segment(tmp_path)
    size = os.path.getsize(seg)
    records, _, _ = recovery.scan_segment(seg, allow_torn=True)
    assert len(records) >= 2
    with open(seg, "r+b") as fh:
        fh.truncate(size - 5)
    # recover: the torn record is gone, every whole record replays
    s2 = durable_session(tmp_path)
    report = s2.durability.recovery_report
    assert report.truncated_bytes > 0
    # the torn tail was physically truncated at the last valid frame
    records2, _, torn = recovery.scan_segment(seg, allow_torn=True)
    assert not torn
    assert [r.seq for r in records2] == [r.seq for r in records[:-1]]

    # state equals serial replay of the surviving prefix
    oracle = SQLSession(make_catalog())
    for r in records2:
        oracle.execute(r.sql)
    np.testing.assert_array_equal(
        s2.catalog.table("t").column("b"), oracle.catalog.table("t").column("b")
    )
    s2.close()


def test_torn_short_header_truncates(tmp_path):
    s = durable_session(tmp_path)
    write_some(s, n=3)
    seg = newest_segment(tmp_path)
    with open(seg, "ab") as fh:
        fh.write(walmod.FRAME_MAGIC)  # 2 stray bytes: a torn frame start
    s2 = durable_session(tmp_path)
    assert s2.durability.recovery_report.truncated_bytes == 2
    s2.close()


# ----------------------------------------------------------------------
# mid-log corruption: typed refusal
# ----------------------------------------------------------------------
def _flip_byte(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        b = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([b[0] ^ 0x10]))


def test_bit_flip_mid_log_refuses_startup(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    seg = newest_segment(tmp_path)
    # flip a payload byte of the FIRST frame (mid-log: frames follow)
    _flip_byte(seg, walmod.FRAME_HEADER.size + 3)
    with pytest.raises(WALCorruptionError):
        durable_session(tmp_path)


def test_bad_magic_refuses_startup(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    seg = newest_segment(tmp_path)
    _flip_byte(seg, 0)  # corrupt the first frame's magic
    with pytest.raises(WALCorruptionError):
        durable_session(tmp_path)


def test_corrupt_length_field_refuses_when_frames_follow(tmp_path):
    """A flipped length that swallows later valid frames must refuse,
    not silently truncate committed history."""
    s = durable_session(tmp_path)
    write_some(s)
    seg = newest_segment(tmp_path)
    # blow the first frame's length field sky-high (little-endian u32
    # right after the 2-byte magic): claims an extent far past EOF
    with open(seg, "r+b") as fh:
        fh.seek(len(walmod.FRAME_MAGIC))
        fh.write((2**30).to_bytes(4, "little"))
    with pytest.raises(WALCorruptionError):
        durable_session(tmp_path)


def test_sequence_gap_refuses_startup(tmp_path):
    s = durable_session(tmp_path)
    write_some(s, n=4)
    seg = newest_segment(tmp_path)
    records, _, _ = recovery.scan_segment(seg, allow_torn=True)
    # rewrite the segment with one record missing from the middle
    with open(seg, "wb") as fh:
        for r in records:
            if r.seq == records[1].seq:
                continue
            fh.write(walmod.encode_record(r.seq, r.kind, r.sql))
    with pytest.raises(WALCorruptionError):
        durable_session(tmp_path)


# ----------------------------------------------------------------------
# checkpoint-only and empty/missing WAL
# ----------------------------------------------------------------------
def test_checkpoint_only_recovery(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    s.close()  # close checkpoints; WAL tail is empty
    expected = s.catalog.table("t").column("b").copy()
    s2 = durable_session(tmp_path)
    report = s2.durability.recovery_report
    assert report.records_replayed == 0
    assert report.checkpoint_path is not None
    np.testing.assert_array_equal(s2.catalog.table("t").column("b"), expected)
    s2.close()


def test_missing_wal_with_valid_checkpoint(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    s.close()
    expected = s.catalog.table("t").column("b").copy()
    for _, seg in recovery.list_segments(str(tmp_path)):
        os.unlink(seg)  # the whole WAL vanishes; the checkpoint stands
    s2 = durable_session(tmp_path)
    np.testing.assert_array_equal(s2.catalog.table("t").column("b"), expected)
    s2.close()


def test_empty_wal_with_valid_checkpoint(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    s.close()
    expected = s.catalog.table("t").column("b").copy()
    for _, seg in recovery.list_segments(str(tmp_path)):
        with open(seg, "r+b") as fh:
            fh.truncate(0)
    s2 = durable_session(tmp_path)
    np.testing.assert_array_equal(s2.catalog.table("t").column("b"), expected)
    s2.close()


def test_fresh_directory_initializes(tmp_path):
    s = durable_session(tmp_path / "new")
    report = s.durability.recovery_report
    assert report.initialized
    assert report.records_replayed == 0
    # an initial checkpoint of the seeded catalog was established
    assert recovery.list_checkpoints(str(tmp_path / "new"))
    s.close()


# ----------------------------------------------------------------------
# checkpoint corruption: fall back, or refuse when none is left
# ----------------------------------------------------------------------
def test_corrupt_newest_checkpoint_falls_back(tmp_path):
    s = durable_session(tmp_path)
    write_some(s)
    s.checkpoint()
    write_some(s, n=3)
    s.close()
    expected = s.catalog.table("t").column("b").copy()
    ckpts = recovery.list_checkpoints(str(tmp_path))
    assert len(ckpts) >= 2
    _flip_byte(ckpts[-1][1], os.path.getsize(ckpts[-1][1]) // 2)
    s2 = durable_session(tmp_path)
    report = s2.durability.recovery_report
    assert report.skipped_checkpoints == [ckpts[-1][1]]
    assert report.checkpoint_path == ckpts[-2][1]
    assert report.records_replayed > 0  # the longer tail replayed
    np.testing.assert_array_equal(s2.catalog.table("t").column("b"), expected)
    s2.close()


def test_all_checkpoints_corrupt_refuses(tmp_path):
    s = durable_session(tmp_path)
    write_some(s, n=2)
    s.close()
    for _, path in recovery.list_checkpoints(str(tmp_path)):
        _flip_byte(path, os.path.getsize(path) // 2)
    with pytest.raises(CheckpointCorruptionError):
        durable_session(tmp_path)


def test_leftover_tmp_checkpoint_is_ignored(tmp_path):
    s = durable_session(tmp_path)
    write_some(s, n=2)
    s.close()
    expected = s.catalog.table("t").column("b").copy()
    junk = tmp_path / "checkpoint-0000000000009999.ckpt.tmp"
    junk.write_bytes(b"half-written garbage")
    s2 = durable_session(tmp_path)
    np.testing.assert_array_equal(s2.catalog.table("t").column("b"), expected)
    s2.close()


# ----------------------------------------------------------------------
# rotation + retention
# ----------------------------------------------------------------------
def test_checkpoint_rotates_and_prunes(tmp_path):
    s = durable_session(tmp_path, checkpoint_retain=2)
    for round_ in range(5):
        write_some(s, n=2)
        s.checkpoint()
    ckpts = recovery.list_checkpoints(str(tmp_path))
    segments = recovery.list_segments(str(tmp_path))
    assert len(ckpts) == 2  # retention bound
    # every surviving segment is needed by the oldest retained
    # checkpoint (or is the active one)
    horizon = ckpts[0][0]
    for i, (start, _) in enumerate(segments[:-1]):
        assert segments[i + 1][0] > horizon + 1
    s.close()


def test_large_retain_keeps_full_history(tmp_path):
    """The chaos oracle scans the full commit log from seq 1; a large
    checkpoint_retain must preserve every segment."""
    s = durable_session(tmp_path, checkpoint_retain=1000)
    for _ in range(3):
        write_some(s, n=2)
        s.checkpoint()
    records = recovery.read_records(str(tmp_path))
    assert [r.seq for r in records] == list(range(1, len(records) + 1))
    assert len(records) == 6
    s.close()
