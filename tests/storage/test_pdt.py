"""Unit tests for the positional delta structure."""

import numpy as np
import pytest

from repro.storage import PositionalDelta


def make_pdt(n=10):
    return PositionalDelta(
        {
            "k": np.arange(n, dtype=np.int64),
            "v": np.arange(n, dtype=np.int64) * 10,
        }
    )


class TestReads:
    def test_merged_without_deltas_is_base(self):
        pdt = make_pdt(5)
        np.testing.assert_array_equal(pdt.column("k"), np.arange(5))
        assert pdt.num_rows == 5
        assert not pdt.has_deltas

    def test_mismatched_base_lengths_raise(self):
        with pytest.raises(ValueError):
            PositionalDelta({"a": np.arange(3), "b": np.arange(4)})


class TestInsert:
    def test_insert_appends_rows(self):
        pdt = make_pdt(3)
        rowids = pdt.insert({"k": np.array([100]), "v": np.array([1000])})
        assert rowids.tolist() == [3]
        assert pdt.num_rows == 4
        assert pdt.column("k")[3] == 100

    def test_insert_requires_all_columns(self):
        pdt = make_pdt()
        with pytest.raises(KeyError):
            pdt.insert({"k": np.array([1])})

    def test_insert_unequal_lengths(self):
        pdt = make_pdt()
        with pytest.raises(ValueError):
            pdt.insert({"k": np.array([1, 2]), "v": np.array([1])})

    def test_pending_inserts_scan(self):
        pdt = make_pdt(3)
        pdt.insert({"k": np.array([7, 8]), "v": np.array([70, 80])})
        pending = pdt.pending_inserts()
        np.testing.assert_array_equal(pending["k"], [7, 8])
        np.testing.assert_array_equal(pdt.pending_insert_rowids(), [3, 4])

    def test_checkpoint_clears_pending(self):
        pdt = make_pdt(3)
        pdt.insert({"k": np.array([7]), "v": np.array([70])})
        pdt.checkpoint()
        assert len(pdt.pending_inserts()["k"]) == 0
        assert pdt.num_rows == 4
        assert not pdt.has_deltas


class TestDelete:
    def test_delete_shifts_rowids(self):
        pdt = make_pdt(5)
        pdt.delete(np.array([1, 3]))
        np.testing.assert_array_equal(pdt.column("k"), [0, 2, 4])
        assert pdt.num_rows == 3

    def test_delete_out_of_range(self):
        pdt = make_pdt(5)
        with pytest.raises(IndexError):
            pdt.delete(np.array([5]))

    def test_delete_after_insert_uses_current_positions(self):
        pdt = make_pdt(3)
        pdt.insert({"k": np.array([99]), "v": np.array([990])})
        pdt.delete(np.array([0, 3]))  # base row 0 and the inserted row
        np.testing.assert_array_equal(pdt.column("k"), [1, 2])

    def test_delete_empty_is_noop(self):
        pdt = make_pdt(3)
        pdt.delete(np.array([], dtype=np.int64))
        assert pdt.num_rows == 3


class TestModify:
    def test_modify_overwrites(self):
        pdt = make_pdt(4)
        pdt.modify(np.array([1, 2]), {"v": np.array([111, 222])})
        np.testing.assert_array_equal(pdt.column("v"), [0, 111, 222, 30])

    def test_modify_unknown_column(self):
        pdt = make_pdt()
        with pytest.raises(KeyError):
            pdt.modify(np.array([0]), {"zzz": np.array([1])})

    def test_modify_out_of_range(self):
        pdt = make_pdt(3)
        with pytest.raises(IndexError):
            pdt.modify(np.array([3]), {"v": np.array([1])})

    def test_modify_then_delete_interplay(self):
        pdt = make_pdt(5)
        pdt.modify(np.array([2]), {"v": np.array([999])})
        pdt.delete(np.array([0]))
        np.testing.assert_array_equal(pdt.column("v"), [10, 999, 30, 40])


class TestCheckpoint:
    def test_checkpoint_folds_everything(self):
        pdt = make_pdt(5)
        pdt.insert({"k": np.array([50]), "v": np.array([500])})
        pdt.delete(np.array([0]))
        pdt.modify(np.array([0]), {"v": np.array([-1])})
        merged_before = {c: pdt.column(c).copy() for c in ("k", "v")}
        pdt.checkpoint()
        for c in ("k", "v"):
            np.testing.assert_array_equal(pdt.column(c), merged_before[c])
        assert pdt.base_rows == pdt.num_rows == 5
