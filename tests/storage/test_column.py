"""Unit tests for typed columns."""

import numpy as np
import pytest

from repro.storage import Column, ColumnType


class TestColumnType:
    def test_infer_int(self):
        assert ColumnType.infer(np.array([1, 2])) is ColumnType.INT64

    def test_infer_float(self):
        assert ColumnType.infer(np.array([1.5])) is ColumnType.FLOAT64

    def test_infer_string(self):
        arr = np.array(["a", "b"], dtype=object)
        assert ColumnType.infer(arr) is ColumnType.STRING

    def test_numpy_dtype(self):
        assert ColumnType.INT64.numpy_dtype is np.int64
        assert ColumnType.FLOAT64.numpy_dtype is np.float64
        assert ColumnType.STRING.numpy_dtype is object


class TestColumn:
    def test_int_column(self):
        col = Column("x", [1, 2, 3])
        assert col.type is ColumnType.INT64
        assert len(col) == 3
        np.testing.assert_array_equal(col.data, [1, 2, 3])

    def test_string_column_from_list(self):
        col = Column("s", ["a", "b", None])
        assert col.type is ColumnType.STRING
        assert col.data[2] is None

    def test_take(self):
        col = Column("x", [10, 20, 30, 40])
        sub = col.take(np.array([0, 3]))
        np.testing.assert_array_equal(sub.data, [10, 40])
        assert sub.name == "x"

    def test_concat(self):
        a = Column("x", [1, 2])
        b = Column("x", [3])
        np.testing.assert_array_equal(a.concat(b).data, [1, 2, 3])

    def test_concat_type_mismatch(self):
        with pytest.raises(TypeError):
            Column("x", [1]).concat(Column("x", ["a"]))

    def test_equality(self):
        assert Column("x", [1, 2]) == Column("x", [1, 2])
        assert Column("x", [1, 2]) != Column("y", [1, 2])
        assert Column("x", [1, 2]) != Column("x", [1, 3])
