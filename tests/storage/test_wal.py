"""Unit tests for the write-ahead log and checkpoint primitives."""

import os

import numpy as np
import pytest

from repro.storage import (
    Catalog,
    PartitionedTable,
    Table,
    WALError,
    WriteAheadLog,
    validate_checkpoint_interval,
    validate_data_dir,
    validate_wal_sync,
)
from repro.storage import recovery, wal as walmod
from repro.testing import FaultInjector, FaultRule, inject


# ----------------------------------------------------------------------
# knob validators (satellite: same validate_* discipline as parallelism)
# ----------------------------------------------------------------------
def test_validate_wal_sync_accepts_enum():
    for policy in ("off", "group", "fsync", "FSYNC", "Group"):
        assert validate_wal_sync(policy) == policy.lower()


@pytest.mark.parametrize("bad", ["always", "", "on", "sync"])
def test_validate_wal_sync_rejects_unknown(bad):
    with pytest.raises(ValueError):
        validate_wal_sync(bad)


@pytest.mark.parametrize("bad", [1, None, True, 0.5, b"fsync"])
def test_validate_wal_sync_rejects_non_string(bad):
    with pytest.raises(TypeError):
        validate_wal_sync(bad)


def test_validate_checkpoint_interval_accepts_positive():
    assert validate_checkpoint_interval(1) == 1
    assert validate_checkpoint_interval(np.int64(64)) == 64


@pytest.mark.parametrize("bad", [0, -1, -100])
def test_validate_checkpoint_interval_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        validate_checkpoint_interval(bad)


@pytest.mark.parametrize("bad", [True, False, 1.5, "10", None])
def test_validate_checkpoint_interval_rejects_non_integers(bad):
    with pytest.raises(TypeError):
        validate_checkpoint_interval(bad)


def test_validate_data_dir(tmp_path):
    assert validate_data_dir(str(tmp_path)) == str(tmp_path)
    assert validate_data_dir(tmp_path) == str(tmp_path)  # PathLike
    with pytest.raises(TypeError):
        validate_data_dir(123)
    with pytest.raises(ValueError):
        validate_data_dir("   ")
    file_path = tmp_path / "a_file"
    file_path.write_text("x")
    with pytest.raises(ValueError):
        validate_data_dir(str(file_path))


# ----------------------------------------------------------------------
# frame encode/decode
# ----------------------------------------------------------------------
def test_record_round_trip():
    frame = walmod.encode_record(7, "write", "INSERT INTO t (a) VALUES (1)")
    magic, length, crc = walmod.FRAME_HEADER.unpack_from(frame, 0)
    assert magic == walmod.FRAME_MAGIC
    payload = frame[walmod.FRAME_HEADER.size :]
    assert len(payload) == length
    seq, kind, sql = walmod.decode_payload(payload)
    assert (seq, kind, sql) == (7, "write", "INSERT INTO t (a) VALUES (1)")


def test_record_survives_unicode_sql():
    frame = walmod.encode_record(1, "write", "INSERT INTO t (s) VALUES ('héllo—✓')")
    _, _, sql = walmod.decode_payload(frame[walmod.FRAME_HEADER.size :])
    assert "héllo—✓" in sql


# ----------------------------------------------------------------------
# WriteAheadLog
# ----------------------------------------------------------------------
def test_append_and_scan(tmp_path):
    path = str(tmp_path / "wal-0000000000000001.log")
    log = WriteAheadLog(path, policy="fsync")
    for i in range(1, 6):
        log.append(i, "write", f"DELETE FROM t WHERE a = {i}")
    assert log.synced_offset == log.offset  # fsync policy: always synced
    log.close()
    records, end, torn = recovery.scan_segment(path, allow_torn=True)
    assert not torn
    assert end == os.path.getsize(path)
    assert [r.seq for r in records] == [1, 2, 3, 4, 5]


def test_off_policy_flushes_but_does_not_fsync(tmp_path):
    path = str(tmp_path / "wal-0000000000000001.log")
    log = WriteAheadLog(path, policy="off")
    log.append(1, "write", "DELETE FROM t")
    # flushed (visible to readers) but not fsynced (not crash-durable)
    assert os.path.getsize(path) == log.offset > 0
    assert log.synced_offset == 0
    log.sync()
    assert log.synced_offset == log.offset
    log.close()


def test_group_policy_piggybacks_fsync(tmp_path):
    path = str(tmp_path / "wal-0000000000000001.log")
    log = WriteAheadLog(path, policy="group", group_commit_s=0.0)
    log.append(1, "write", "DELETE FROM t")
    # interval 0: every append piggybacks a sync
    assert log.synced_offset == log.offset
    log.group_commit_s = 3600.0
    log.append(2, "write", "DELETE FROM t")
    assert log.synced_offset < log.offset
    log.close()  # close syncs
    assert log.synced_offset == log.offset


def test_closed_log_rejects_appends(tmp_path):
    log = WriteAheadLog(str(tmp_path / "w.log"))
    log.close()
    with pytest.raises(WALError):
        log.append(1, "write", "x")
    with pytest.raises(WALError):
        log.sync()


def test_failed_append_rolls_back_the_frame(tmp_path):
    """An injected crash at wal.append leaves the file exactly as it was."""
    path = str(tmp_path / "wal-0000000000000001.log")
    log = WriteAheadLog(path, policy="fsync")
    log.append(1, "write", "DELETE FROM t WHERE a = 1")
    pre_size = os.path.getsize(path)
    injector = FaultInjector(
        seed=1, rules={"wal.append": FaultRule(action="raise", max_fires=1)}
    )
    with inject(injector):
        with pytest.raises(Exception):
            log.append(2, "write", "DELETE FROM t WHERE a = 2")
    assert os.path.getsize(path) == pre_size
    # the log remains usable: the next append lands cleanly
    log.append(2, "write", "DELETE FROM t WHERE a = 2")
    log.close()
    records, _, torn = recovery.scan_segment(path, allow_torn=True)
    assert not torn and [r.seq for r in records] == [1, 2]


def test_failed_fsync_rolls_back_the_frame(tmp_path):
    """A crash between write and fsync of a record un-logs that record."""
    path = str(tmp_path / "wal-0000000000000001.log")
    log = WriteAheadLog(path, policy="fsync")
    log.append(1, "write", "DELETE FROM t WHERE a = 1")
    pre_size = os.path.getsize(path)
    injector = FaultInjector(
        seed=1, rules={"wal.fsync": FaultRule(action="raise", max_fires=1)}
    )
    with inject(injector):
        with pytest.raises(Exception):
            log.append(2, "write", "DELETE FROM t WHERE a = 2")
    assert os.path.getsize(path) == pre_size
    log.close()


def test_truncate_to_rolls_back_explicitly(tmp_path):
    path = str(tmp_path / "w.log")
    log = WriteAheadLog(path, policy="off")
    start = log.append(1, "write", "DELETE FROM t")
    log.truncate_to(start)
    assert os.path.getsize(path) == start == 0
    log.append(1, "write", "UPDATE t SET a = 1")
    log.close()
    records, _, _ = recovery.scan_segment(path, allow_torn=True)
    assert [r.sql for r in records] == ["UPDATE t SET a = 1"]


# ----------------------------------------------------------------------
# checkpoint snapshot round trip
# ----------------------------------------------------------------------
def _catalog():
    cat = Catalog()
    cat.register(
        Table.from_arrays(
            "events",
            {
                "eid": np.arange(20, dtype=np.int64),
                "val": np.linspace(0.0, 1.0, 20),
                "tag": np.array([f"s{i}" for i in range(20)], dtype=object),
            },
        )
    )
    metrics = Table.from_arrays(
        "metrics",
        {"mid": np.arange(12, dtype=np.int64), "v": np.arange(12) * 0.25},
    )
    cat.register(PartitionedTable.from_table(metrics, "mid", 3))
    return cat


def test_snapshot_round_trip_bit_identical():
    cat = _catalog()
    blob = walmod.snapshot_catalog(cat, seq=17)
    seq, manifest, arrays = walmod.load_snapshot(blob)
    assert seq == 17
    fresh = _catalog()
    # perturb the fresh catalog so restore has real work to do
    fresh.table("events").delete(np.arange(5, dtype=np.int64))
    fresh.table("metrics").partitions[0].modify(
        np.array([0], dtype=np.int64), {"v": np.array([99.0])}
    )
    walmod.restore_catalog(fresh, manifest, arrays)
    for name in ("events", "metrics"):
        orig, rest = cat.table(name), fresh.table(name)
        pairs = (
            list(zip(orig.partitions, rest.partitions))
            if isinstance(orig, PartitionedTable)
            else [(orig, rest)]
        )
        for po, pr in pairs:
            assert po.num_rows == pr.num_rows
            for col in po.schema.names:
                a, b = po.column(col), pr.column(col)
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)


def test_restore_registers_missing_table():
    cat = _catalog()
    blob = walmod.snapshot_catalog(cat, seq=1)
    _, manifest, arrays = walmod.load_snapshot(blob)
    empty = Catalog()
    walmod.restore_catalog(empty, manifest, arrays)
    assert "events" in empty and "metrics" in empty
    assert empty.table("events").num_rows == 20
    assert isinstance(empty.table("metrics"), PartitionedTable)
    assert empty.table("metrics").num_partitions == 3


def test_restore_fires_update_hooks():
    """In-place restore goes through delete/insert so index-maintenance
    hooks observe it (a PatchIndex silently pointing at pre-crash state
    would be a corruption vector)."""
    cat = _catalog()
    blob = walmod.snapshot_catalog(cat, seq=1)
    _, manifest, arrays = walmod.load_snapshot(blob)
    fresh = _catalog()
    seen = []
    fresh.table("events").add_update_hook(lambda t, ev: seen.append(ev.kind))
    walmod.restore_catalog(fresh, manifest, arrays)
    assert "delete" in seen and "insert" in seen


def test_load_snapshot_rejects_corruption():
    blob = walmod.snapshot_catalog(_catalog(), seq=3)
    flipped = bytearray(blob)
    flipped[len(flipped) // 2] ^= 0x40
    with pytest.raises(ValueError):
        walmod.load_snapshot(bytes(flipped))
    with pytest.raises(ValueError):
        walmod.load_snapshot(b"not a checkpoint")
    with pytest.raises(ValueError):
        walmod.load_snapshot(blob[:-3])  # truncated payload
