"""Unit tests for tables, partitions, minmax, catalog and snapshots."""

import threading

import numpy as np
import pytest

from repro.storage import (
    Catalog,
    ColumnType,
    Field,
    MinMaxIndex,
    PartitionedTable,
    Schema,
    ShardLockManager,
    Snapshot,
    Table,
)


def make_table(n=100, name="t"):
    return Table.from_arrays(
        name,
        {"k": np.arange(n, dtype=np.int64), "v": (np.arange(n, dtype=np.int64) * 7) % 13},
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Field("a", ColumnType.INT64), Field("a", ColumnType.INT64)])

    def test_field_lookup(self):
        s = Schema([Field("a", ColumnType.INT64)])
        assert s.field("a").type is ColumnType.INT64
        assert "a" in s and "b" not in s
        with pytest.raises(KeyError):
            s.field("b")


class TestTableBasics:
    def test_from_arrays_infers_types(self):
        t = Table.from_arrays(
            "t", {"x": np.array([1.5, 2.5]), "s": np.array(["a", "b"], dtype=object)}
        )
        assert t.schema.field("x").type is ColumnType.FLOAT64
        assert t.schema.field("s").type is ColumnType.STRING

    def test_column_mismatch_raises(self):
        schema = Schema([Field("a", ColumnType.INT64)])
        with pytest.raises(ValueError):
            Table("t", schema, {"b": np.arange(3)})

    def test_unknown_column_read(self):
        t = make_table()
        with pytest.raises(KeyError):
            t.column("missing")

    def test_empty_like(self):
        t = make_table()
        e = Table.empty_like("e", t)
        assert e.num_rows == 0
        assert e.schema == t.schema


class TestTableUpdates:
    def test_insert_returns_rowids_and_bumps_version(self):
        t = make_table(10)
        v0 = t.version
        rowids = t.insert({"k": np.array([100, 101]), "v": np.array([1, 2])})
        assert rowids.tolist() == [10, 11]
        assert t.num_rows == 12
        assert t.version == v0 + 1

    def test_delete_shifts_positions(self):
        t = make_table(10)
        t.delete(np.array([0, 5]))
        assert t.num_rows == 8
        assert t.column("k")[0] == 1

    def test_modify(self):
        t = make_table(5)
        t.modify(np.array([2]), {"v": np.array([99])})
        assert t.column("v")[2] == 99

    def test_update_hooks_receive_events(self):
        t = make_table(5)
        events = []
        t.add_update_hook(lambda table, ev: events.append(ev.kind))
        t.insert({"k": np.array([9]), "v": np.array([9])})
        t.delete(np.array([0]))
        t.modify(np.array([0]), {"v": np.array([1])})
        assert events == ["insert", "delete", "modify"]

    def test_remove_hook(self):
        t = make_table(5)
        calls = []
        hook = lambda table, ev: calls.append(1)
        t.add_update_hook(hook)
        t.remove_update_hook(hook)
        t.delete(np.array([0]))
        assert calls == []

    def test_checkpoint_preserves_image(self):
        t = make_table(10)
        t.insert({"k": np.array([999]), "v": np.array([1])})
        image = t.column("k").copy()
        t.checkpoint()
        np.testing.assert_array_equal(t.column("k"), image)


class TestMinMax:
    def test_blocks_and_pruning(self):
        idx = MinMaxIndex(np.arange(100), block_size=10)
        assert idx.num_blocks == 10
        assert idx.blocks_in_range(25, 34).tolist() == [2, 3]
        assert idx.row_ranges_in_range(25, 34) == [(20, 40)]

    def test_row_mask(self):
        idx = MinMaxIndex(np.arange(50), block_size=10)
        mask = idx.row_mask_in_range(0, 9)
        assert mask[:10].all() and not mask[10:].any()

    def test_selectivity(self):
        idx = MinMaxIndex(np.arange(100), block_size=10)
        assert idx.selectivity(0, 9) == pytest.approx(0.1)
        assert idx.selectivity(1000, 2000) == 0.0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            MinMaxIndex(np.arange(5), block_size=0)

    def test_table_minmax_cache_invalidated_on_update(self):
        t = make_table(100)
        idx1 = t.minmax("k")
        assert t.minmax("k") is idx1  # cached
        t.insert({"k": np.array([500]), "v": np.array([0])})
        idx2 = t.minmax("k")
        assert idx2 is not idx1
        assert idx2.blocks_in_range(500, 500).size > 0


class TestPartitionedTable:
    def test_from_table_splits_evenly(self):
        t = make_table(100)
        pt = PartitionedTable.from_table(t, "k", 4)
        assert pt.num_partitions == 4
        assert pt.num_rows == 100
        sizes = [p.num_rows for p in pt.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_column_concat_order(self):
        t = make_table(40)
        pt = PartitionedTable.from_table(t, "k", 4)
        np.testing.assert_array_equal(np.sort(pt.column("k")), np.arange(40))

    def test_insert_routes_to_last_partition_for_new_keys(self):
        pt = PartitionedTable.from_table(make_table(40), "k", 4)
        pt.insert({"k": np.array([1000]), "v": np.array([5])})
        assert pt.partitions[-1].num_rows == 11

    def test_insert_routes_by_range(self):
        pt = PartitionedTable.from_table(make_table(40), "k", 4)
        pt.insert({"k": np.array([0]), "v": np.array([5])})  # re-insert low key
        assert pt.partitions[0].num_rows == 11

    def test_delete_global(self):
        pt = PartitionedTable.from_table(make_table(40), "k", 4)
        pt.delete_global(np.array([0, 10, 39]))
        assert pt.num_rows == 37

    def test_modify_global(self):
        pt = PartitionedTable.from_table(make_table(40), "k", 4)
        pt.modify_global(np.array([0, 39]), {"v": np.array([111, 222])})
        col = pt.column("v")
        assert col[0] == 111 and col[38 + 1 - 0] if False else True
        assert 111 in col and 222 in col

    def test_single_partition(self):
        pt = PartitionedTable.from_table(make_table(10), "k", 1)
        assert pt.num_partitions == 1

    def test_mismatched_schemas_rejected(self):
        a = make_table(5, "a")
        b = Table.from_arrays("b", {"z": np.arange(5)})
        with pytest.raises(ValueError):
            PartitionedTable("p", [a, b], "k", [2])


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog()
        t = make_table()
        cat.register(t)
        assert cat.table("t") is t
        assert "t" in cat

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            Catalog().table("nope")

    def test_structures(self):
        cat = Catalog()
        cat.register(make_table())
        cat.add_structure("patchindex", "t", "v", "OBJ")
        assert cat.structure("patchindex", "t", "v") == "OBJ"
        assert cat.structure("patchindex", "t", "k") is None
        assert cat.structures_on("t") == [("patchindex", "v", "OBJ")]
        cat.drop("t")
        assert cat.structure("patchindex", "t", "v") is None


class TestSnapshot:
    def test_snapshot_isolated_from_updates(self):
        t = make_table(10)
        snap = Snapshot(t)
        t.delete(np.array([0]))
        assert snap.num_rows == 10
        assert snap.column("k")[0] == 0
        assert t.num_rows == 9


class TestShardLockManager:
    def test_locked_many_is_exclusive(self):
        mgr = ShardLockManager(8)
        counter = {"v": 0}

        def work():
            for _ in range(200):
                with mgr.locked_many([1, 3]):
                    cur = counter["v"]
                    counter["v"] = cur + 1

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert counter["v"] == 800

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardLockManager(0)
